//! Tokenization — the minimal text pipeline of an embedded engine.
//!
//! Lowercased alphanumeric runs, with a tiny stopword list. The engines
//! the tutorial cites (Microsearch, Snoogle, MAX) index short metadata
//! strings on sensor-class hardware; elaborate linguistic processing is
//! out of scope there and here.

/// Words ignored by the indexer (high-frequency, zero selectivity).
const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "has", "he", "in", "is", "it",
    "its", "of", "on", "or", "that", "the", "to", "was", "were", "will", "with",
];

/// Split text into lowercase alphanumeric tokens, dropping stopwords and
/// single-character tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            push_token(&mut tokens, std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        push_token(&mut tokens, current);
    }
    tokens
}

fn push_token(tokens: &mut Vec<String>, tok: String) {
    if tok.chars().count() > 1 && !STOPWORDS.contains(&tok.as_str()) {
        tokens.push(tok);
    }
}

/// Stable 64-bit term hash (FNV-1a), the key stored in index triples.
pub fn term_hash(term: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in term.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_lowercases_and_filters() {
        assert_eq!(
            tokenize("The Quick, brown FOX is on a hill!"),
            vec!["quick", "brown", "fox", "hill"]
        );
    }

    #[test]
    fn numbers_and_unicode() {
        assert_eq!(
            tokenize("dose 500mg à Paris"),
            vec!["dose", "500mg", "paris"]
        );
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! ... ---").is_empty());
        assert!(
            tokenize("a I").is_empty(),
            "single chars and stopwords drop"
        );
    }

    #[test]
    fn term_hash_is_stable_and_spreads() {
        assert_eq!(term_hash("lyon"), term_hash("lyon"));
        assert_ne!(term_hash("lyon"), term_hash("paris"));
        assert_ne!(term_hash("ab"), term_hash("ba"));
    }
}

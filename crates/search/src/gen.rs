//! Synthetic corpus generation for tests and benches.
//!
//! The tutorial motivates the embedded engine with personal corpora:
//! "e-mails, medical records, official forms, digital histories of
//! interactions with e-services". This module produces such corpora with
//! a Zipf-distributed vocabulary — the term-frequency law real text
//! follows, which is what stresses posting-list skew.

use pds_obs::rng::Rng;

/// Configuration of a synthetic corpus.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// Number of documents.
    pub num_docs: usize,
    /// Vocabulary size.
    pub vocabulary: usize,
    /// Words per document.
    pub doc_len: usize,
    /// Zipf skew (1.0 ≈ natural language).
    pub zipf_s: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            num_docs: 1000,
            vocabulary: 2000,
            doc_len: 20,
            zipf_s: 1.0,
        }
    }
}

/// A Zipf sampler over ranks `1..=n` via inverse-CDF on the precomputed
/// harmonic weights.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler for `n` ranks with skew `s`.
    pub fn new(n: usize, s: f64) -> Self {
        // pds-lint: allow(panic.assert) — corpus generator is experiment
        // harness code; n is a compile-time experiment constant
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `0..n` (0 = most frequent).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Generate a corpus of synthetic "personal documents".
pub fn generate_corpus(cfg: &CorpusConfig, rng: &mut impl Rng) -> Vec<String> {
    let zipf = Zipf::new(cfg.vocabulary, cfg.zipf_s);
    (0..cfg.num_docs)
        .map(|_| {
            (0..cfg.doc_len)
                .map(|_| format!("w{}", zipf.sample(rng)))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_obs::rng::SeedableRng;
    use pds_obs::rng::StdRng;

    #[test]
    fn corpus_has_requested_shape() {
        let cfg = CorpusConfig {
            num_docs: 50,
            vocabulary: 100,
            doc_len: 8,
            zipf_s: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let corpus = generate_corpus(&cfg, &mut rng);
        assert_eq!(corpus.len(), 50);
        assert!(corpus.iter().all(|d| d.split(' ').count() == 8));
    }

    #[test]
    fn zipf_is_skewed() {
        let zipf = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(8);
        let mut counts = vec![0usize; 1000];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[99] * 5,
            "rank 0 ({}) should dwarf rank 99 ({})",
            counts[0],
            counts[99]
        );
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(c > 700 && c < 1300, "roughly uniform, got {c}");
        }
    }
}

//! Reference implementation: unconstrained in-RAM TF-IDF search.
//!
//! This is exactly the "classical" algorithm the tutorial shows *cannot*
//! run on the token ("one container is allocated per retrieved docid …
//! too much!"). It serves two purposes: the correctness oracle for the
//! embedded engine (results must match bit-for-bit on ranking), and the
//! RAM-consumption baseline of experiment E3.

use std::collections::HashMap;

use crate::engine::SearchHit;
use crate::tokenize::{term_hash, tokenize};
use crate::triple::DocId;

/// Naive in-memory inverted index + scorer.
#[derive(Default)]
pub struct NaiveSearch {
    /// term → (docid, tf) postings.
    postings: HashMap<u64, Vec<(DocId, u16)>>,
    num_docs: u32,
}

impl NaiveSearch {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed documents.
    pub fn num_docs(&self) -> u32 {
        self.num_docs
    }

    /// Index one document, returning its docid.
    pub fn index(&mut self, text: &str) -> DocId {
        let doc = self.num_docs;
        self.num_docs += 1;
        let mut tf: HashMap<u64, u16> = HashMap::new();
        for tok in tokenize(text) {
            let e = tf.entry(term_hash(&tok)).or_insert(0);
            *e = e.saturating_add(1);
        }
        for (term, count) in tf {
            self.postings.entry(term).or_default().push((doc, count));
        }
        doc
    }

    /// TF-IDF top-`n`: allocates one accumulator per candidate document —
    /// the RAM pattern the embedded engine exists to avoid.
    pub fn search(&self, keywords: &[&str], n: usize) -> Vec<SearchHit> {
        let mut terms: Vec<u64> = keywords
            .iter()
            .flat_map(|kw| tokenize(kw))
            .map(|t| term_hash(&t))
            .collect();
        terms.sort_unstable();
        terms.dedup();
        let mut scores: HashMap<DocId, f64> = HashMap::new();
        for term in terms {
            let Some(list) = self.postings.get(&term) else {
                continue;
            };
            let idf = (self.num_docs as f64 / list.len() as f64).ln();
            for &(doc, tf) in list {
                *scores.entry(doc).or_insert(0.0) += tf as f64 * idf;
            }
        }
        let mut hits: Vec<SearchHit> = scores
            .into_iter()
            .map(|(doc, score)| SearchHit { doc, score })
            .collect();
        // Same total order as the embedded engine: score desc, docid desc.
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(b.doc.cmp(&a.doc)));
        hits.truncate(n);
        hits
    }

    /// Delete a document (the oracle mirror of
    /// `SearchEngine::delete_document`).
    pub fn delete(&mut self, doc: DocId) {
        for list in self.postings.values_mut() {
            list.retain(|(d, _)| *d != doc);
        }
        self.postings.retain(|_, list| !list.is_empty());
        // num_docs counts live docs for idf, matching the engine.
        self.num_docs = self.num_docs.saturating_sub(1);
    }

    /// Conjunctive top-`n`: only documents containing every keyword.
    pub fn search_all(&self, keywords: &[&str], n: usize) -> Vec<SearchHit> {
        let mut terms: Vec<u64> = keywords
            .iter()
            .flat_map(|kw| tokenize(kw))
            .map(|t| term_hash(&t))
            .collect();
        terms.sort_unstable();
        terms.dedup();
        let required = terms.len();
        let mut scores: HashMap<DocId, (f64, usize)> = HashMap::new();
        for term in terms {
            let Some(list) = self.postings.get(&term) else {
                return Vec::new(); // missing keyword ⇒ empty conjunction
            };
            let idf = (self.num_docs as f64 / list.len() as f64).ln();
            for &(doc, tf) in list {
                let e = scores.entry(doc).or_insert((0.0, 0));
                e.0 += tf as f64 * idf;
                e.1 += 1;
            }
        }
        let mut hits: Vec<SearchHit> = scores
            .into_iter()
            .filter(|(_, (_, matched))| *matched == required)
            .map(|(doc, (score, _))| SearchHit { doc, score })
            .collect();
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(b.doc.cmp(&a.doc)));
        hits.truncate(n);
        hits
    }

    /// Peak accumulator count of a query — the "RAM containers" the
    /// tutorial's slide calls out. Used by the E3 bench.
    pub fn accumulators_for(&self, keywords: &[&str]) -> usize {
        let mut docs: Vec<DocId> = keywords
            .iter()
            .flat_map(|kw| tokenize(kw))
            .filter_map(|t| self.postings.get(&term_hash(&t)))
            .flatten()
            .map(|&(d, _)| d)
            .collect();
        docs.sort_unstable();
        docs.dedup();
        docs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_by_tfidf() {
        let mut s = NaiveSearch::new();
        s.index("rare rare rare");
        s.index("common word");
        s.index("common rare");
        let hits = s.search(&["rare"], 3);
        assert_eq!(hits[0].doc, 0, "tf=3 wins");
        assert_eq!(hits.len(), 2);
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn idf_discounts_ubiquitous_terms() {
        let mut s = NaiveSearch::new();
        for _ in 0..4 {
            s.index("everywhere filler");
        }
        let hits = s.search(&["everywhere"], 10);
        // df == num_docs ⇒ idf = ln(1) = 0 ⇒ zero scores.
        assert!(hits.iter().all(|h| h.score == 0.0));
    }

    #[test]
    fn accumulator_count_is_union_of_postings() {
        let mut s = NaiveSearch::new();
        s.index("alpha beta");
        s.index("alpha");
        s.index("gamma");
        assert_eq!(s.accumulators_for(&["alpha", "gamma"]), 3);
        assert_eq!(s.accumulators_for(&["beta"]), 1);
        assert_eq!(s.accumulators_for(&["nothing"]), 0);
    }
}

//! Table storage: rows in an append-only log.
//!
//! Rows are immutable once written (updates on NAND are appends of new
//! versions; the personal-data workloads of the tutorial are
//! insert-dominant: interaction histories, bills, records). Rowids are
//! dense and increasing — the property every climbing index and pipeline
//! merge of this crate relies on.

use pds_flash::{BlockId, Flash, FlashError, LogWriter, RecordAddr};

use crate::value::{decode_row, encode_row, Row, Schema};

/// Durable identity of a [`Table`] across a power cycle: name, schema,
/// the row log's erase blocks, and the rowid directory. A real token
/// persists this in a catalog log; the simulation carries it across the
/// reboot in RAM.
#[derive(Debug, Clone)]
pub struct TableManifest {
    /// Table name.
    pub name: String,
    /// Column layout.
    pub schema: Schema,
    /// Erase blocks of the row log.
    pub blocks: Vec<BlockId>,
    /// rowid → record address.
    pub directory: Vec<RecordAddr>,
}

/// Dense row identifier within one table.
pub type RowId = u32;

/// One table: schema + row log + rowid directory.
pub struct Table {
    name: String,
    schema: Schema,
    log: LogWriter,
    /// rowid → record address. ~6 B per row; the RAM mirror of a
    /// flash-resident directory log (its page I/Os are dominated by the
    /// data pages and omitted from the accounting).
    directory: Vec<RecordAddr>,
}

impl Table {
    /// Create an empty table on `flash`.
    pub fn new(flash: &Flash, name: &str, schema: Schema) -> Self {
        Table {
            name: name.to_string(),
            schema,
            log: flash.new_log(),
            directory: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> u32 {
        self.directory.len() as u32
    }

    /// Number of data pages currently programmed.
    pub fn num_pages(&self) -> u32 {
        self.log.num_pages()
    }

    /// Insert a row; returns its rowid. Panics on schema mismatch (a
    /// programming error, not a runtime condition).
    pub fn insert(&mut self, row: &Row) -> Result<RowId, FlashError> {
        // pds-lint: allow(panic.assert) — documented panic on schema mismatch,
        // a call-site programming error; stored bytes never reach this check.
        assert!(
            self.schema.validate(row),
            "row does not match schema of {}",
            self.name
        );
        let addr = self.log.append(&encode_row(row))?;
        self.directory.push(addr);
        Ok(self.directory.len() as RowId - 1)
    }

    /// Fetch one row (one page I/O).
    pub fn get(&self, id: RowId) -> Result<Row, FlashError> {
        let addr = *self
            .directory
            .get(id as usize)
            .ok_or(FlashError::BadRecordAddr)?;
        let bytes = self.log.get(addr)?;
        decode_row(&bytes).ok_or(FlashError::BadRecordAddr)
    }

    /// Flush buffered rows to flash.
    pub fn flush(&mut self) -> Result<(), FlashError> {
        self.log.flush()
    }

    /// The table's durable identity, for [`recover`](Self::recover)
    /// after a power loss.
    pub fn manifest(&self) -> TableManifest {
        TableManifest {
            name: self.name.clone(),
            schema: self.schema.clone(),
            blocks: self.log.blocks().to_vec(),
            directory: self.directory.clone(),
        }
    }

    /// Rebuild a table after a power loss. Rows are appended in rowid
    /// order, so whatever the crash destroyed is a *suffix*: the
    /// directory is truncated at the first row whose record lies beyond
    /// the recovered pages. Returns the table and the number of rows
    /// lost.
    pub fn recover(flash: &Flash, m: &TableManifest) -> Result<(Self, u32), FlashError> {
        let (log, report) = LogWriter::recover(flash, &m.blocks)?;
        let keep = m
            .directory
            .iter()
            .take_while(|a| {
                (a.page as usize) < report.slots_per_page.len()
                    && a.slot < report.slots_per_page[a.page as usize]
            })
            .count();
        let lost = (m.directory.len() - keep) as u32;
        pds_obs::counter("recovery.rows_lost").add(lost as u64);
        Ok((
            Table {
                name: m.name.clone(),
                schema: m.schema.clone(),
                log,
                directory: m.directory[..keep].to_vec(),
            },
            lost,
        ))
    }

    /// Full sequential scan (page-buffered): calls `f(rowid, row)` for
    /// every row.
    pub fn scan(&self, mut f: impl FnMut(RowId, Row)) -> Result<(), FlashError> {
        let mut rowid: RowId = 0;
        for page in 0..self.log.num_pages() {
            for rec in self.log.read_page_records(page)? {
                let row = decode_row(&rec).ok_or(FlashError::BadRecordAddr)?;
                f(rowid, row);
                rowid += 1;
            }
        }
        for rec in self.log.buffered_records() {
            let row = decode_row(&rec).ok_or(FlashError::BadRecordAddr)?;
            f(rowid, row);
            rowid += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ColumnType, Value};

    fn customer_schema() -> Schema {
        Schema::new(&[
            ("id", ColumnType::U64),
            ("city", ColumnType::Str),
            ("segment", ColumnType::Str),
        ])
    }

    #[test]
    fn insert_get_round_trip() {
        let f = Flash::small(32);
        let mut t = Table::new(&f, "CUSTOMER", customer_schema());
        let r0 = t
            .insert(&vec![
                Value::U64(1),
                Value::str("Lyon"),
                Value::str("HOUSEHOLD"),
            ])
            .unwrap();
        let r1 = t
            .insert(&vec![
                Value::U64(2),
                Value::str("Paris"),
                Value::str("AUTO"),
            ])
            .unwrap();
        assert_eq!((r0, r1), (0, 1));
        assert_eq!(t.get(0).unwrap()[1], Value::str("Lyon"));
        assert_eq!(t.get(1).unwrap()[2], Value::str("AUTO"));
        assert!(t.get(2).is_err());
    }

    #[test]
    fn scan_sees_flushed_and_buffered_rows_in_order() {
        let f = Flash::small(32);
        let mut t = Table::new(&f, "CUSTOMER", customer_schema());
        for i in 0..100u64 {
            t.insert(&vec![
                Value::U64(i),
                Value::str("Lyon"),
                Value::str("HOUSEHOLD"),
            ])
            .unwrap();
        }
        let mut seen = Vec::new();
        t.scan(|id, row| {
            assert_eq!(row[0], Value::U64(id as u64));
            seen.push(id);
        })
        .unwrap();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "does not match schema")]
    fn schema_mismatch_panics() {
        let f = Flash::small(4);
        let mut t = Table::new(&f, "CUSTOMER", customer_schema());
        let _ = t.insert(&vec![Value::U64(1)]);
    }
}

//! PBFilter — the sequential selection index of the tutorial.
//!
//! "Log1: «Keys» (vertical partition), stores the index key, filled at
//! tuple insertion. Log2: «Bloom Filters», 1 BF built for each page in
//! «Keys»; BF is a probabilistic summary (~2 B/key)."
//!
//! Lookup (`CUSTOMER.CITY = 'Lyon'`): scan the summary log; for each
//! filter that answers *positive*, read the corresponding Keys page and
//! collect the matching rowids. Cost: `|Log2| I/O + 1 I/O per (true or
//! false) positive page` — compared to scanning the table itself, the
//! slide's 640-IO table scan collapses to a 17-IO summary scan.
//!
//! Both logs are strictly append-only: the index is *filled at tuple
//! insertion* with zero random writes.

use pds_crypto::BloomFilter;
use pds_flash::{Flash, FlashError, LogWriter};

use crate::table::RowId;

/// Keys-page header: entry count.
const PAGE_HEADER: usize = 2;

/// The two-log selection index.
pub struct PBFilter {
    flash: Flash,
    /// Log1 «Keys»: raw pages of (key, rowid) entries.
    keys: LogWriter,
    /// Log2 «Bloom Filters»: one record per Keys page.
    summaries: LogWriter,
    /// Entries of the Keys page currently being filled (RAM).
    pending: Vec<(Vec<u8>, RowId)>,
    pending_bytes: usize,
    total_keys: u64,
    /// Bloom-filter budget in bits per key (the tutorial's figure is 16,
    /// i.e. ~2 bytes/key; exposed as a dial for the A1 ablation).
    bits_per_key: usize,
}

impl PBFilter {
    /// An empty index on `flash` with the tutorial's ~2 B/key summaries.
    pub fn new(flash: &Flash) -> Self {
        Self::with_bits_per_key(flash, 16)
    }

    /// An empty index with an explicit Bloom budget (bits per key).
    pub fn with_bits_per_key(flash: &Flash, bits_per_key: usize) -> Self {
        // pds-lint: allow(panic.assert) — construction-time shape check on a
        // caller-chosen constant (Bloom budget dial); not data-dependent.
        assert!(bits_per_key >= 1);
        PBFilter {
            flash: flash.clone(),
            keys: flash.new_log(),
            summaries: flash.new_log(),
            pending: Vec::new(),
            pending_bytes: PAGE_HEADER,
            total_keys: 0,
            bits_per_key,
        }
    }

    /// Total indexed keys.
    pub fn num_keys(&self) -> u64 {
        self.total_keys
    }

    /// Pages in the Keys log (flushed).
    pub fn num_key_pages(&self) -> u32 {
        self.keys.num_pages()
    }

    /// Pages in the summary log (flushed).
    pub fn num_summary_pages(&self) -> u32 {
        self.summaries.num_pages()
    }

    fn entry_bytes(key: &[u8]) -> usize {
        2 + key.len() + 4
    }

    /// Index one `(key, rowid)` pair, appending a Keys page (and its
    /// summary) whenever the current page fills.
    pub fn insert(&mut self, key: &[u8], rowid: RowId) -> Result<(), FlashError> {
        let page_size = self.flash.geometry().page_size;
        if self.pending_bytes + Self::entry_bytes(key) > page_size {
            self.flush_page()?;
        }
        self.pending_bytes += Self::entry_bytes(key);
        self.pending.push((key.to_vec(), rowid));
        self.total_keys += 1;
        Ok(())
    }

    fn flush_page(&mut self) -> Result<(), FlashError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let page_size = self.flash.geometry().page_size;
        let mut page = vec![0xFFu8; page_size];
        page[0..2].copy_from_slice(&(self.pending.len() as u16).to_le_bytes());
        let mut off = PAGE_HEADER;
        let num_bits = (self.pending.len() * self.bits_per_key).max(8);
        let hashes = ((self.bits_per_key as f64 * 0.693).round() as u32).max(1);
        let mut bf = BloomFilter::new(num_bits, hashes);
        for (key, rowid) in &self.pending {
            page[off..off + 2].copy_from_slice(&(key.len() as u16).to_le_bytes());
            off += 2;
            page[off..off + key.len()].copy_from_slice(key);
            off += key.len();
            page[off..off + 4].copy_from_slice(&rowid.to_le_bytes());
            off += 4;
            bf.insert(key);
        }
        self.keys.append_raw_page(&page)?;
        self.summaries.append(&bf.to_bytes())?;
        self.pending.clear();
        self.pending_bytes = PAGE_HEADER;
        Ok(())
    }

    /// Force pending entries to flash (end of an insertion batch).
    pub fn flush(&mut self) -> Result<(), FlashError> {
        self.flush_page()?;
        self.summaries.flush()
    }

    /// Erase blocks of both logs — what crash recovery frees before
    /// rebuilding the index from its base table (a PBFilter is derived
    /// state; its RAM-buffered tail makes page-level recovery moot).
    pub fn blocks(&self) -> Vec<pds_flash::BlockId> {
        let mut blocks = self.keys.blocks().to_vec();
        blocks.extend_from_slice(self.summaries.blocks());
        blocks
    }

    /// All rowids whose key equals `key`, in ascending rowid order.
    pub fn lookup(&self, key: &[u8]) -> Result<Vec<RowId>, FlashError> {
        let mut hits = Vec::new();
        // 1. Summary scan: flushed summary pages + the RAM-buffered tail.
        let mut positive_pages = Vec::new();
        let mut summary_idx: u32 = 0;
        for p in 0..self.summaries.num_pages() {
            for rec in self.summaries.read_page_records(p)? {
                if Self::summary_positive(&rec, key, summary_idx)? {
                    positive_pages.push(summary_idx);
                }
                summary_idx += 1;
            }
        }
        for rec in self.summaries.buffered_records() {
            if Self::summary_positive(&rec, key, summary_idx)? {
                positive_pages.push(summary_idx);
            }
            summary_idx += 1;
        }
        // 2. Probe each positive Keys page.
        let page_size = self.flash.geometry().page_size;
        let mut buf = vec![0u8; page_size];
        for page_idx in positive_pages {
            let addr = self.keys.page_addr(page_idx)?;
            self.flash.read_page(addr, &mut buf)?;
            let entries = decode_keys_page(&buf).ok_or(FlashError::CorruptPage(addr))?;
            hits.extend(
                entries
                    .into_iter()
                    .filter(|(k, _)| k.as_slice() == key)
                    .map(|(_, rowid)| rowid),
            );
        }
        // 3. The pending RAM page.
        for (k, rowid) in &self.pending {
            if k == key {
                hits.push(*rowid);
            }
        }
        Ok(hits)
    }

    fn summary_positive(rec: &[u8], key: &[u8], idx: u32) -> Result<bool, FlashError> {
        let bf = BloomFilter::from_bytes(rec)
            .ok_or(FlashError::CorruptPage(pds_flash::PageAddr(idx)))?;
        Ok(bf.maybe_contains(key))
    }

    /// Iterate every `(key, rowid)` entry in insertion order — the input
    /// stream of a reorganization.
    pub fn for_each_entry(&self, mut f: impl FnMut(&[u8], RowId)) -> Result<(), FlashError> {
        let page_size = self.flash.geometry().page_size;
        let mut buf = vec![0u8; page_size];
        for p in 0..self.keys.num_pages() {
            let addr = self.keys.page_addr(p)?;
            self.flash.read_page(addr, &mut buf)?;
            let entries = decode_keys_page(&buf).ok_or(FlashError::CorruptPage(addr))?;
            for (key, rowid) in entries {
                f(&key, rowid);
            }
        }
        for (k, rowid) in &self.pending {
            f(k, *rowid);
        }
        Ok(())
    }

    /// Lazy iterator over every `(key, rowid)` entry in insertion order,
    /// holding one decoded page in RAM — the reorganization input stream.
    pub fn entries(&self) -> PBFilterEntries<'_> {
        PBFilterEntries {
            idx: self,
            next_page: 0,
            current: Vec::new(),
            pos: 0,
            pending_done: false,
        }
    }

    /// Discard the index, reclaiming its blocks.
    pub fn discard(self) {
        self.keys.discard();
        self.summaries.discard();
    }
}

/// Streaming entry iterator over a [`PBFilter`] (see
/// [`PBFilter::entries`]).
pub struct PBFilterEntries<'a> {
    idx: &'a PBFilter,
    next_page: u32,
    current: Vec<(Vec<u8>, RowId)>,
    pos: usize,
    pending_done: bool,
}

impl Iterator for PBFilterEntries<'_> {
    type Item = Result<(Vec<u8>, RowId), FlashError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.pos < self.current.len() {
                let item = std::mem::take(&mut self.current[self.pos]);
                self.pos += 1;
                return Some(Ok(item));
            }
            if self.next_page < self.idx.keys.num_pages() {
                let page = self.next_page;
                self.next_page += 1;
                let addr = match self.idx.keys.page_addr(page) {
                    Ok(a) => a,
                    Err(e) => return Some(Err(e)),
                };
                let mut buf = vec![0u8; self.idx.flash.geometry().page_size];
                if let Err(e) = self.idx.flash.read_page(addr, &mut buf) {
                    return Some(Err(e));
                }
                self.current = match decode_keys_page(&buf) {
                    Some(entries) => entries,
                    None => return Some(Err(FlashError::CorruptPage(addr))),
                };
                self.pos = 0;
                continue;
            }
            if !self.pending_done {
                self.pending_done = true;
                self.current = self.idx.pending.clone();
                self.pos = 0;
                continue;
            }
            return None;
        }
    }
}

/// Decode one Keys page. `None` means the page bytes do not form a
/// well-formed entry list (truncated length prefix, key running past the
/// page end): the caller maps it to [`FlashError::CorruptPage`] so a
/// damaged flash page degrades into a failed query, never a panic.
fn decode_keys_page(buf: &[u8]) -> Option<Vec<(Vec<u8>, RowId)>> {
    let count = u16::from_le_bytes([*buf.first()?, *buf.get(1)?]) as usize;
    let mut off = PAGE_HEADER;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let klen = u16::from_le_bytes([*buf.get(off)?, *buf.get(off + 1)?]) as usize;
        off += 2;
        let key = buf.get(off..off + klen)?.to_vec();
        off += klen;
        let rowid = u32::from_le_bytes(buf.get(off..off + 4)?.try_into().ok()?);
        off += 4;
        out.push((key, rowid));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_obs::rng::{Rng, SeedableRng, StdRng};

    fn flash() -> Flash {
        Flash::small(128)
    }

    /// Insert `n` city keys: city = "C{i % cities}", rowid = i.
    fn build(n: u32, cities: u32) -> (Flash, PBFilter) {
        let f = flash();
        let mut idx = PBFilter::new(&f);
        for i in 0..n {
            let city = format!("C{}", i % cities);
            idx.insert(city.as_bytes(), i).unwrap();
        }
        (f, idx)
    }

    #[test]
    fn lookup_finds_all_and_only_matches() {
        let (_f, idx) = build(500, 10);
        let hits = idx.lookup(b"C3").unwrap();
        let expected: Vec<RowId> = (0..500).filter(|i| i % 10 == 3).collect();
        assert_eq!(hits, expected, "ascending rowids, complete");
        assert!(idx.lookup(b"C99").unwrap().is_empty());
    }

    #[test]
    fn pending_entries_are_visible_before_flush() {
        let f = flash();
        let mut idx = PBFilter::new(&f);
        idx.insert(b"Lyon", 7).unwrap();
        assert_eq!(idx.lookup(b"Lyon").unwrap(), vec![7]);
        assert_eq!(idx.num_key_pages(), 0);
    }

    #[test]
    fn summary_scan_beats_key_scan() {
        // Domain (500 cities) far above the per-page key capacity, as in
        // the slide's CUSTOMER.CITY example: most Keys pages contain no
        // match, and their Bloom filters prune them.
        let (f, mut idx) = build(2000, 500);
        idx.flush().unwrap();
        let key_pages = idx.num_key_pages() as u64;
        let before = f.stats();
        idx.lookup(b"C7").unwrap();
        let delta = f.stats() - before;
        assert!(
            delta.page_reads < key_pages,
            "lookup read {} pages, full key scan would read {}",
            delta.page_reads,
            key_pages
        );
        // Summary log is much smaller than the keys log.
        assert!(idx.num_summary_pages() < idx.num_key_pages() / 2);
    }

    #[test]
    fn no_false_negatives_ever() {
        let (_f, idx) = build(1000, 100);
        for c in 0..100 {
            let key = format!("C{c}");
            let hits = idx.lookup(key.as_bytes()).unwrap();
            assert_eq!(hits.len(), 10, "city {key}");
        }
    }

    #[test]
    fn for_each_entry_streams_everything_in_insertion_order() {
        let (_f, idx) = build(300, 7);
        let mut n = 0u32;
        idx.for_each_entry(|key, rowid| {
            assert_eq!(key, format!("C{}", rowid % 7).as_bytes());
            assert_eq!(rowid, n);
            n += 1;
        })
        .unwrap();
        assert_eq!(n, 300);
    }

    #[test]
    fn insertion_is_pure_sequential_writes() {
        let f = flash();
        let mut idx = PBFilter::new(&f);
        for i in 0..3000u32 {
            idx.insert(format!("K{}", i % 20).as_bytes(), i).unwrap();
        }
        idx.flush().unwrap();
        // Two interleaved logs: programs alternate between them, but each
        // log itself never rewrites a page; erases stay zero.
        assert_eq!(f.stats().block_erases, 0);
    }

    #[test]
    fn prop_lookup_matches_linear_scan() {
        for case in 0..16u64 {
            let mut rng = StdRng::seed_from_u64(0x9BF0 + case);
            let keys: Vec<u8> = (0..rng.gen_range(1usize..300))
                .map(|_| rng.gen_range(0u8..8))
                .collect();
            let f = flash();
            let mut idx = PBFilter::new(&f);
            for (i, k) in keys.iter().enumerate() {
                idx.insert(&[*k], i as RowId).unwrap();
            }
            for probe in 0u8..8 {
                let expected: Vec<RowId> = keys
                    .iter()
                    .enumerate()
                    .filter(|(_, k)| **k == probe)
                    .map(|(i, _)| i as RowId)
                    .collect();
                assert_eq!(idx.lookup(&[probe]).unwrap(), expected, "case {case}");
            }
        }
    }
}

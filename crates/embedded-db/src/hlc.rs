//! Hybrid logical clock — the commit stamp of the MVCC subsystem.
//!
//! A secure token has no trustworthy wall clock (and the determinism
//! contract forbids reading one), so "hybrid" here keeps only the
//! logical half of the classic HLC: a monotone counter advanced on
//! every local commit (`tick`) and merged with remote stamps on message
//! receipt (`observe`). The two rules preserve exactly the property the
//! subsystem needs — *if commit A causally precedes commit B, then
//! `A.hlc < B.hlc`* — while ties between causally concurrent commits
//! are broken deterministically by node id.

/// A hybrid logical clock stamp: logical counter + node id tie-break.
///
/// Ordering is lexicographic on `(counter, node)` via the derive — the
/// total order every consumer (snapshots, change-log cursors, GC
/// floors) relies on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Hlc {
    /// Logical counter: advances on every local commit and jumps past
    /// any observed remote stamp.
    pub counter: u64,
    /// Id of the token that issued the stamp (causally concurrent
    /// commits on distinct tokens tie-break on it).
    pub node: u32,
}

impl Hlc {
    /// The zero stamp — causally before every commit.
    pub const ZERO: Hlc = Hlc {
        counter: 0,
        node: 0,
    };

    /// Construct a stamp from its raw parts.
    pub fn new(counter: u64, node: u32) -> Self {
        Hlc { counter, node }
    }

    /// Fixed 12-byte wire form (LE counter, LE node).
    pub fn encode(&self) -> [u8; 12] {
        let mut out = [0u8; 12];
        out[0..8].copy_from_slice(&self.counter.to_le_bytes());
        out[8..12].copy_from_slice(&self.node.to_le_bytes());
        out
    }

    /// Parse the wire form; `None` on any size mismatch.
    pub fn decode(bytes: &[u8]) -> Option<Hlc> {
        if bytes.len() != 12 {
            return None;
        }
        Some(Hlc {
            counter: u64::from_le_bytes(bytes.get(0..8)?.try_into().ok()?),
            node: u32::from_le_bytes(bytes.get(8..12)?.try_into().ok()?),
        })
    }
}

impl std::fmt::Display for Hlc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.counter, self.node)
    }
}

/// The clock a token advances: one per database, seeded with the
/// token's node id.
#[derive(Debug, Clone)]
pub struct HlcClock {
    node: u32,
    last: u64,
}

impl HlcClock {
    /// A fresh clock for `node`, starting before all commits.
    pub fn new(node: u32) -> Self {
        HlcClock { node, last: 0 }
    }

    /// The node id this clock stamps with.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// The newest stamp issued or observed (no advance).
    pub fn now(&self) -> Hlc {
        Hlc::new(self.last, self.node)
    }

    /// Issue the stamp for a local commit: strictly after every stamp
    /// this clock has issued or observed.
    pub fn tick(&mut self) -> Hlc {
        self.last = self.last.saturating_add(1);
        self.now()
    }

    /// Merge a remote stamp (message receipt): the next `tick` lands
    /// strictly after both histories. Returns the merged `now`.
    pub fn observe(&mut self, remote: Hlc) -> Hlc {
        self.last = self.last.max(remote.counter);
        self.now()
    }

    /// Restore the clock after recovery so the next `tick` lands
    /// strictly after the newest durable stamp.
    pub fn advance_past(&mut self, stamp: Hlc) {
        self.last = self.last.max(stamp.counter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_strictly_monotone() {
        let mut c = HlcClock::new(3);
        let a = c.tick();
        let b = c.tick();
        assert!(a < b);
        assert_eq!(a, Hlc::new(1, 3));
        assert_eq!(b, Hlc::new(2, 3));
        assert!(Hlc::ZERO < a);
    }

    #[test]
    fn observe_jumps_past_remote_history() {
        let mut c = HlcClock::new(1);
        c.tick();
        c.observe(Hlc::new(40, 9));
        let next = c.tick();
        assert_eq!(next, Hlc::new(41, 1));
        // Observing an older stamp never regresses the clock.
        c.observe(Hlc::new(5, 9));
        assert_eq!(c.tick(), Hlc::new(42, 1));
    }

    #[test]
    fn concurrent_commits_tie_break_on_node() {
        let a = Hlc::new(7, 1);
        let b = Hlc::new(7, 2);
        assert!(a < b);
        assert!(Hlc::new(6, 9) < a);
    }

    #[test]
    fn encode_decode_round_trip() {
        let h = Hlc::new(u64::MAX - 1, 0xABCD_EF01);
        assert_eq!(Hlc::decode(&h.encode()), Some(h));
        assert_eq!(Hlc::decode(&[0u8; 11]), None);
        assert_eq!(Hlc::decode(&[0u8; 13]), None);
    }
}

//! Index reorganization: sequential PBFilter → B-tree-like index.
//!
//! "Scalability ⇒ timely reorganize the index … to transform it into a
//! more efficient index. The reorganization process: only uses log
//! structures; background / interruptible."
//!
//! Two phases, exactly the tutorial's:
//!
//! 1. **Sort** the `(key, pointer)` pairs of the Keys log into a «Sorted
//!    Keys» log ([`crate::sort::external_sort`] — temporary runs are logs,
//!    reclaimed at block grain).
//! 2. **Build the key hierarchy** above the sorted leaves
//!    ([`crate::tree::TreeIndex::build`] — every page appended once).
//!
//! The source index stays fully queryable until the caller swaps it for
//! the returned tree, so an interruption at any point simply discards
//! partial logs and leaves the system as it was — the interruptibility
//! the tutorial requires. [`Reorganization`] exposes the phase boundary so
//! tests (and the E2 bench) can interrupt between them.

use std::cell::RefCell;

use pds_flash::{Flash, Log};
use pds_mcu::RamBudget;

use crate::error::DbError;
use crate::pbfilter::PBFilter;
use crate::sort::{decode_entry, external_sort};
use crate::tree::TreeIndex;

/// RAM granted to run formation during the sort phase.
const RUN_BYTES: usize = 8 * 1024;
/// Merge fan-in (one RAM page per merged run).
const FAN_IN: usize = 8;

/// One-shot reorganization: PBFilter in, TreeIndex out.
pub fn reorganize(flash: &Flash, ram: &RamBudget, source: &PBFilter) -> Result<TreeIndex, DbError> {
    let mut r = Reorganization::start(flash, ram, source)?;
    r.build_tree()
}

/// A reorganization paused at the phase boundary.
pub struct Reorganization {
    flash: Flash,
    sorted: Option<Log>,
}

impl Reorganization {
    /// Phase 1: sort the source index's entries into a «Sorted Keys» log.
    pub fn start(
        flash: &Flash,
        ram: &RamBudget,
        source: &PBFilter,
    ) -> Result<Reorganization, DbError> {
        // Stream entries out of the PBFilter, capturing any flash error.
        let first_err: RefCell<Option<DbError>> = RefCell::new(None);
        let entries = source.entries().map_while(|res| match res {
            Ok(e) => Some(e),
            Err(e) => {
                *first_err.borrow_mut() = Some(e.into());
                None
            }
        });
        let sorted = external_sort(flash, ram, entries, RUN_BYTES, FAN_IN)?;
        if let Some(e) = first_err.into_inner() {
            sorted.reclaim();
            return Err(e);
        }
        Ok(Reorganization {
            flash: flash.clone(),
            sorted: Some(sorted),
        })
    }

    /// Phase 2: build the tree above the sorted log, reclaiming it.
    pub fn build_tree(&mut self) -> Result<TreeIndex, DbError> {
        let sorted = self
            .sorted
            .take()
            .ok_or(DbError::Corrupt("reorg state: build_tree called twice"))?;
        let first_err: RefCell<Option<DbError>> = RefCell::new(None);
        let entries = sorted.reader().map_while(|rec| match rec {
            Ok(bytes) => match decode_entry(&bytes) {
                Some(e) => Some(e),
                None => {
                    *first_err.borrow_mut() = Some(DbError::Corrupt("sorted keys"));
                    None
                }
            },
            Err(e) => {
                *first_err.borrow_mut() = Some(e.into());
                None
            }
        });
        let tree = TreeIndex::build(&self.flash, entries)?;
        sorted.reclaim();
        if let Some(e) = first_err.into_inner() {
            tree.reclaim();
            return Err(e);
        }
        Ok(tree)
    }

    /// Interrupt: drop the intermediate sorted log, reclaiming its blocks.
    /// The source index was never touched.
    pub fn abort(mut self) {
        if let Some(sorted) = self.sorted.take() {
            sorted.reclaim();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::RowId;

    fn build_pbfilter(f: &Flash, n: u32, domain: u32) -> PBFilter {
        let mut idx = PBFilter::new(f);
        for i in 0..n {
            idx.insert(&(i % domain).to_be_bytes(), i).unwrap();
        }
        idx.flush().unwrap();
        idx
    }

    #[test]
    fn tree_answers_match_source() {
        let f = Flash::small(1024);
        let ram = RamBudget::new(64 * 1024);
        let pbf = build_pbfilter(&f, 5000, 100);
        let tree = reorganize(&f, &ram, &pbf).unwrap();
        for probe in [0u32, 17, 99] {
            let key = probe.to_be_bytes();
            let mut from_pbf = pbf.lookup(&key).unwrap();
            from_pbf.sort_unstable();
            assert_eq!(tree.lookup(&key).unwrap(), from_pbf, "key {probe}");
        }
        assert_eq!(tree.num_entries(), 5000);
    }

    #[test]
    fn tree_lookup_is_cheaper_than_summary_scan() {
        let f = Flash::small(2048);
        let ram = RamBudget::new(64 * 1024);
        let pbf = build_pbfilter(&f, 20_000, 500);
        let key = 123u32.to_be_bytes();
        let before = f.stats();
        pbf.lookup(&key).unwrap();
        let pbf_ios = (f.stats() - before).page_reads;
        let tree = reorganize(&f, &ram, &pbf).unwrap();
        let tree_ios = tree.lookup_cost(&key).unwrap();
        assert!(
            tree_ios < pbf_ios,
            "tree {tree_ios} IOs must beat summary scan {pbf_ios} IOs at this size"
        );
    }

    #[test]
    fn abort_between_phases_leaks_nothing_and_source_survives() {
        let f = Flash::small(1024);
        let ram = RamBudget::new(64 * 1024);
        let pbf = build_pbfilter(&f, 3000, 50);
        let free_before = f.free_blocks();
        let r = Reorganization::start(&f, &ram, &pbf).unwrap();
        // "Interrupt" here: the sorted log exists, the tree does not.
        r.abort();
        assert_eq!(f.free_blocks(), free_before, "intermediate logs reclaimed");
        // Source still answers.
        let hits: Vec<RowId> = pbf.lookup(&7u32.to_be_bytes()).unwrap();
        assert_eq!(hits.len(), 60);
    }

    #[test]
    fn reorganize_empty_index() {
        let f = Flash::small(64);
        let ram = RamBudget::new(32 * 1024);
        let pbf = PBFilter::new(&f);
        let tree = reorganize(&f, &ram, &pbf).unwrap();
        assert_eq!(tree.num_entries(), 0);
    }
}

//! MVCC snapshot isolation over append-only stores.
//!
//! The stores of a personal data server are insert-dominant logs with
//! dense, increasing ids (rowids, docids), so multi-versioning needs no
//! per-row version chains: *a version of a store is a prefix length*.
//! Every committed write batch gets one [`Hlc`] stamp and pushes a
//! *mark* `(hlc, count)` per touched store; a [`Snapshot`] pins an HLC
//! and reads each store at the largest mark at or below it — it can
//! never observe a later write, no matter how many commits land while
//! it is open.
//!
//! Alongside the marks, every commit appends one [`ChangeRec`] per new
//! entity to a durable [`ChangeLog`] on flash, which serves
//! `changes_since(hlc)` — the primitive continuous queries and
//! delta-based Trusted-Cells sync are built on.
//!
//! Version GC is epoch-based: each commit advances the epoch, each
//! snapshot pins the epoch it opened in, and [`MvccState::gc`] collapses
//! marks (and compacts the change log) below the oldest pinned
//! HLC — or below the clock, when nothing is pinned.

use std::collections::BTreeMap;

use pds_flash::{BlockId, ChangeLog, ChangeRec, Flash};

use crate::error::DbError;
use crate::hlc::{Hlc, HlcClock};

/// Store id of the document store in change records (tables use their
/// catalog index; the search engine's document store rides the same log
/// under this reserved id, which no catalog ever reaches).
pub const DOC_STORE: u16 = 0xFFFF;

/// Change kinds stamped into [`ChangeRec::kind`].
pub mod kind {
    /// A row appended to a relational table.
    pub const ROW_INSERT: u8 = 1;
    /// A document appended to the search engine's document store.
    pub const DOC_APPEND: u8 = 2;
}

/// A pinned, immutable view of the database: reads through it see
/// exactly the commits with stamps at or below `hlc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// The HLC the view is pinned to.
    pub hlc: Hlc,
    /// The commit epoch the snapshot opened in (GC pin key).
    pub epoch: u64,
}

/// What [`MvccState::gc`] collapsed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Version marks dropped (superseded below the floor).
    pub versions_collapsed: u64,
    /// Change records compacted out of the durable log.
    pub changes_compacted: u64,
    /// The floor the pass collapsed below.
    pub floor: Hlc,
}

/// What [`MvccState::recover`] found and repaired.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MvccRecovery {
    /// Change records recovered from the durable log.
    pub changes_recovered: u64,
    /// Phantom records dropped: their commit stamp survived the crash
    /// but their data rows did not, so exposing them would make
    /// `changes_since` name entities the store cannot serve.
    pub changes_dropped: u64,
    /// Durable-but-unstamped tail entities re-stamped by a fresh
    /// recovery commit (their change records died in controller RAM
    /// while their data pages survived).
    pub entities_restamped: u64,
}

/// Durable identity of an [`MvccState`] across a power cycle. Marks
/// above the GC floor are *derived* state (rebuilt by replaying the
/// change log), so only the collapsed per-store base marks are carried.
#[derive(Debug, Clone)]
pub struct MvccManifest {
    /// Node id of the owning token.
    pub node: u32,
    /// Erase blocks of the change log.
    pub blocks: Vec<BlockId>,
    /// Commit epoch at manifest time.
    pub epoch: u64,
    /// GC floor: history at or below this stamp is collapsed.
    pub floor: Hlc,
    /// Per-store collapsed base mark: `(store, hlc, count)`.
    pub base: Vec<(u16, Hlc, u32)>,
}

/// The version state of one database: HLC clock, per-store version
/// marks, snapshot pins, and the durable change log.
pub struct MvccState {
    clock: HlcClock,
    changelog: ChangeLog,
    /// Per-store version marks `(hlc, visible prefix length)`, in stamp
    /// order. The last mark is the live length.
    marks: BTreeMap<u16, Vec<(Hlc, u32)>>,
    /// Commit epoch: advances by one per commit.
    epoch: u64,
    /// Open-snapshot pins: epoch → (pinned hlc, refcount).
    pins: BTreeMap<u64, (Hlc, u64)>,
    /// GC floor: marks and change records at or below it are collapsed.
    floor: Hlc,
}

impl MvccState {
    /// Fresh version state for one token's database.
    pub fn new(flash: &Flash, node: u32) -> Self {
        MvccState {
            clock: HlcClock::new(node),
            changelog: ChangeLog::new(flash),
            marks: BTreeMap::new(),
            epoch: 0,
            pins: BTreeMap::new(),
            floor: Hlc::ZERO,
        }
    }

    /// The newest stamp issued or observed.
    pub fn now(&self) -> Hlc {
        self.clock.now()
    }

    /// The node id commits are stamped with.
    pub fn node(&self) -> u32 {
        self.clock.node()
    }

    /// The current commit epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The GC floor: `changes_since` cursors below it are incomplete.
    pub fn changes_floor(&self) -> Hlc {
        self.floor
    }

    /// Merge a remote stamp (message receipt): the next commit stamps
    /// strictly after both histories.
    pub fn observe(&mut self, remote: Hlc) {
        self.clock.observe(remote);
    }

    /// The live (latest-committed) prefix length of `store`.
    pub fn latest(&self, store: u16) -> u32 {
        self.marks
            .get(&store)
            .and_then(|m| m.last())
            .map_or(0, |&(_, n)| n)
    }

    /// Commit one write batch: `stores` lists `(store, kind, new_len)`
    /// for every store the batch may have grown. Stores whose length did
    /// not grow are skipped; if nothing grew, no stamp is issued and
    /// `Ok(None)` is returned. Otherwise the batch gets one fresh HLC,
    /// one change record per new entity, and one version mark per store.
    pub fn commit(&mut self, stores: &[(u16, u8, u32)]) -> Result<Option<Hlc>, DbError> {
        let grown: Vec<(u16, u8, u32, u32)> = stores
            .iter()
            .filter_map(|&(store, kind, new_len)| {
                let prev = self.latest(store);
                (new_len > prev).then_some((store, kind, prev, new_len))
            })
            .collect();
        if grown.is_empty() {
            return Ok(None);
        }
        let hlc = self.clock.tick();
        for (store, kind, prev, new_len) in grown {
            for entity in prev..new_len {
                self.changelog.append(ChangeRec {
                    hlc: hlc.counter,
                    node: hlc.node,
                    kind,
                    store,
                    entity,
                })?;
            }
            self.marks.entry(store).or_default().push((hlc, new_len));
        }
        self.epoch += 1;
        Ok(Some(hlc))
    }

    /// Open a snapshot pinned to the current HLC. Reads through it never
    /// observe later commits. Must be paired with
    /// [`release`](Self::release) or its epoch stays pinned against GC.
    pub fn snapshot(&mut self) -> Snapshot {
        let hlc = self.clock.now();
        let entry = self.pins.entry(self.epoch).or_insert((hlc, 0));
        entry.1 += 1;
        Snapshot {
            hlc,
            epoch: self.epoch,
        }
    }

    /// Release a snapshot's GC pin. Releasing twice is a no-op.
    pub fn release(&mut self, snap: &Snapshot) {
        if let Some(entry) = self.pins.get_mut(&snap.epoch) {
            entry.1 = entry.1.saturating_sub(1);
            if entry.1 == 0 {
                self.pins.remove(&snap.epoch);
            }
        }
    }

    /// Open snapshots still pinning an epoch.
    pub fn open_snapshots(&self) -> u64 {
        self.pins.values().map(|&(_, n)| n).sum()
    }

    /// The prefix length of `store` visible to `snap`: the largest mark
    /// stamped at or below the snapshot's HLC.
    pub fn visible_at(&self, snap: &Snapshot, store: u16) -> u32 {
        self.marks.get(&store).map_or(0, |marks| {
            let i = marks.partition_point(|&(h, _)| h <= snap.hlc);
            if i == 0 {
                0
            } else {
                marks[i - 1].1
            }
        })
    }

    /// Every change record stamped strictly after `since`, in stamp
    /// order. Commits are returned whole: all records of a commit share
    /// its stamp, and cursors only ever hold commit stamps.
    pub fn changes_since(&self, since: Hlc) -> Vec<ChangeRec> {
        self.changelog.changes_since(since.counter, since.node)
    }

    /// Durably flush buffered change records to flash. A commit is
    /// crash-durable only once both its data pages and its change
    /// records are flushed; callers batch both on the same cadence.
    pub fn flush(&mut self) -> Result<(), DbError> {
        self.changelog.flush()?;
        Ok(())
    }

    /// Collapse version history no open snapshot (and no consumer
    /// cursor) can still address. The floor is the oldest pinned HLC —
    /// or the clock, when nothing is pinned — capped by `keep_since`
    /// (the oldest `changes_since` cursor still outstanding). Marks
    /// below the floor collapse into one base mark per store; the
    /// change log compacts to records above the floor.
    pub fn gc(&mut self, keep_since: Option<Hlc>) -> Result<GcReport, DbError> {
        let mut floor = self
            .pins
            .first_key_value()
            .map_or(self.clock.now(), |(_, &(h, _))| h);
        if let Some(keep) = keep_since {
            floor = floor.min(keep);
        }
        // GC floors never regress.
        floor = floor.max(self.floor);
        let mut collapsed = 0u64;
        for marks in self.marks.values_mut() {
            let i = marks.partition_point(|&(h, _)| h <= floor);
            if i > 1 {
                collapsed += (i - 1) as u64;
                marks.drain(..i - 1);
            }
        }
        let compacted = self.changelog.compact(floor.counter, floor.node)?;
        self.floor = floor;
        pds_obs::counter("mvcc.gc_runs").inc();
        pds_obs::counter("mvcc.versions_collapsed").add(collapsed);
        Ok(GcReport {
            versions_collapsed: collapsed,
            changes_compacted: compacted,
            floor,
        })
    }

    /// The durable identity to carry across a power cycle. Call
    /// [`flush`](Self::flush) first so the captured block list is final
    /// — the same contract as every other manifest in the stack
    /// (unflushed state is honestly lost, never silently corrupted).
    pub fn manifest(&self) -> MvccManifest {
        let base = self
            .marks
            .iter()
            .filter_map(|(&store, marks)| {
                let i = marks.partition_point(|&(h, _)| h <= self.floor);
                (i > 0).then(|| (store, marks[i - 1].0, marks[i - 1].1))
            })
            .collect();
        MvccManifest {
            node: self.clock.node(),
            blocks: self.changelog.blocks(),
            epoch: self.epoch,
            floor: self.floor,
            base,
        }
    }

    /// Rebuild the version state after a power loss.
    ///
    /// `store_lens` gives the *recovered* durable length of every store
    /// (`(store, kind, len)`). The pass:
    ///
    /// 1. recovers the change log's durable prefix (CRC scan, torn tail
    ///    truncated);
    /// 2. drops *phantom* records — the first record naming an entity
    ///    the recovered store no longer holds cuts the log there, so
    ///    `changes_since` never returns a record newer than the store;
    /// 3. rebuilds all post-floor marks by replaying the surviving
    ///    records over the manifest's base marks;
    /// 4. re-stamps any durable-but-unstamped store tail with a fresh
    ///    recovery commit (rows flushed, change records still in RAM at
    ///    the cut) — no durable entity ever escapes the change history.
    pub fn recover(
        flash: &Flash,
        m: &MvccManifest,
        store_lens: &[(u16, u8, u32)],
    ) -> Result<(Self, MvccRecovery), DbError> {
        let (mut changelog, clrep) = ChangeLog::recover(flash, &m.blocks)?;
        let lens: BTreeMap<u16, u32> = store_lens
            .iter()
            .map(|&(store, _, len)| (store, len))
            .collect();
        let dropped =
            changelog.retain_prefix(|rec| lens.get(&rec.store).is_none_or(|&len| rec.entity < len));

        let mut marks: BTreeMap<u16, Vec<(Hlc, u32)>> = BTreeMap::new();
        for &(store, hlc, count) in &m.base {
            let capped = lens.get(&store).map_or(count, |&len| count.min(len));
            marks.insert(store, vec![(hlc, capped)]);
        }
        let mut commits = 0u64;
        let mut last = m.floor;
        for rec in changelog.records() {
            let stamp = Hlc::new(rec.hlc, rec.node);
            if stamp > last {
                commits += 1;
                last = stamp;
            }
            let entry = marks.entry(rec.store).or_default();
            match entry.last_mut() {
                Some(mark) if mark.0 == stamp => mark.1 = mark.1.max(rec.entity + 1),
                Some(mark) if mark.0 > stamp => {} // collapsed into the base
                _ => entry.push((stamp, rec.entity + 1)),
            }
        }

        let mut clock = HlcClock::new(m.node);
        clock.advance_past(m.floor);
        clock.advance_past(last);

        let mut state = MvccState {
            clock,
            changelog,
            marks,
            epoch: m.epoch + commits,
            pins: BTreeMap::new(),
            floor: m.floor,
        };
        // Re-stamp durable-but-unstamped tails — but only if the layer
        // was ever used. A database that never committed has no change
        // history for its rows to escape from (and no consumer holding
        // a cursor); stamping its whole content here would turn every
        // wake of a commit-free token into a full re-log.
        let mut restamped = 0u64;
        if state.epoch > 0 {
            let tail: Vec<(u16, u8, u32)> = store_lens
                .iter()
                .filter(|&&(store, _, len)| len > state.latest(store))
                .inspect(|&&(store, _, len)| {
                    restamped += u64::from(len - state.latest(store));
                })
                .copied()
                .collect();
            state.commit(&tail)?;
        }

        let report = MvccRecovery {
            changes_recovered: clrep.records_recovered,
            changes_dropped: dropped,
            entities_restamped: restamped,
        };
        pds_obs::counter("recovery.changes_dropped").add(dropped);
        Ok((state, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> (Flash, MvccState) {
        let f = Flash::small(64);
        let s = MvccState::new(&f, 7);
        (f, s)
    }

    #[test]
    fn snapshots_pin_the_visible_prefix() {
        let (_f, mut s) = state();
        s.commit(&[(0, kind::ROW_INSERT, 10)]).unwrap();
        let snap = s.snapshot();
        s.commit(&[(0, kind::ROW_INSERT, 25)]).unwrap();
        assert_eq!(s.visible_at(&snap, 0), 10);
        assert_eq!(s.latest(0), 25);
        let later = s.snapshot();
        assert_eq!(s.visible_at(&later, 0), 25);
        // An untouched store is empty under every snapshot.
        assert_eq!(s.visible_at(&snap, 3), 0);
        s.release(&snap);
        s.release(&later);
        assert_eq!(s.open_snapshots(), 0);
    }

    #[test]
    fn empty_commit_issues_no_stamp() {
        let (_f, mut s) = state();
        assert_eq!(s.commit(&[]).unwrap(), None);
        s.commit(&[(0, kind::ROW_INSERT, 5)]).unwrap();
        // Same length again: nothing grew.
        assert_eq!(s.commit(&[(0, kind::ROW_INSERT, 5)]).unwrap(), None);
        assert_eq!(s.epoch(), 1);
    }

    #[test]
    fn changes_since_returns_whole_later_commits() {
        let (_f, mut s) = state();
        let c1 = s.commit(&[(0, kind::ROW_INSERT, 2)]).unwrap().unwrap();
        let c2 = s
            .commit(&[(0, kind::ROW_INSERT, 3), (DOC_STORE, kind::DOC_APPEND, 2)])
            .unwrap()
            .unwrap();
        assert_eq!(s.changes_since(Hlc::ZERO).len(), 5);
        let after_c1 = s.changes_since(c1);
        assert_eq!(after_c1.len(), 3);
        assert!(after_c1
            .iter()
            .all(|r| (r.hlc, r.node) == (c2.counter, c2.node)));
        assert_eq!(s.changes_since(c2), vec![]);
    }

    #[test]
    fn gc_respects_pins_and_cursors() {
        let (_f, mut s) = state();
        s.commit(&[(0, kind::ROW_INSERT, 10)]).unwrap();
        let snap = s.snapshot();
        s.commit(&[(0, kind::ROW_INSERT, 20)]).unwrap();
        s.commit(&[(0, kind::ROW_INSERT, 30)]).unwrap();

        // The open snapshot holds the floor at its HLC: nothing is lost.
        let rep = s.gc(None).unwrap();
        assert_eq!(rep.versions_collapsed, 0);
        assert_eq!(s.visible_at(&snap, 0), 10);

        s.release(&snap);
        // A consumer cursor caps the floor below the clock.
        let cursor = Hlc::new(2, 7);
        let rep = s.gc(Some(cursor)).unwrap();
        assert_eq!(rep.floor, cursor);
        assert_eq!(s.changes_since(cursor).len(), 10, "cursor still served");

        // Nothing pinned: everything collapses to one live mark.
        let rep = s.gc(None).unwrap();
        assert_eq!(rep.versions_collapsed, 1);
        assert_eq!(s.latest(0), 30);
        assert_eq!(s.changes_since(s.changes_floor()), vec![]);
    }

    #[test]
    fn observe_merges_remote_history() {
        let (_f, mut s) = state();
        s.commit(&[(0, kind::ROW_INSERT, 1)]).unwrap();
        s.observe(Hlc::new(50, 3));
        let c = s.commit(&[(0, kind::ROW_INSERT, 2)]).unwrap().unwrap();
        assert_eq!(c, Hlc::new(51, 7));
    }

    #[test]
    fn recover_rebuilds_marks_and_restamps_unstamped_tail() {
        let (f, mut s) = state();
        s.commit(&[(0, kind::ROW_INSERT, 10)]).unwrap();
        s.commit(&[(0, kind::ROW_INSERT, 20), (1, kind::ROW_INSERT, 5)])
            .unwrap();
        s.flush().unwrap();
        let m = s.manifest();

        // Crash. Store 0 recovered whole, store 1 lost two rows, and
        // store 2 has three durable rows the log never stamped.
        let f2 = f.reboot();
        let lens = [
            (0, kind::ROW_INSERT, 20u32),
            (1, kind::ROW_INSERT, 3),
            (2, kind::ROW_INSERT, 3),
        ];
        let (mut r, rep) = MvccState::recover(&f2, &m, &lens).unwrap();
        // Store 1's lost rows cut the log: records 3..5 and later are gone.
        assert!(rep.changes_dropped >= 2);
        assert_eq!(rep.entities_restamped, 3);
        assert_eq!(r.latest(1), 3);
        assert_eq!(r.latest(2), 3);
        // changes_since never names an entity beyond the recovered store.
        for rec in r.changes_since(Hlc::ZERO) {
            let len = lens.iter().find(|&&(st, _, _)| st == rec.store).unwrap().2;
            assert!(rec.entity < len, "phantom record {rec:?}");
        }
        // The next commit stamps strictly after everything durable.
        let c = r.commit(&[(0, kind::ROW_INSERT, 21)]).unwrap().unwrap();
        assert!(c > m.floor);
        assert!(r
            .changes_since(Hlc::ZERO)
            .iter()
            .all(|x| Hlc::new(x.hlc, x.node) <= c));
    }

    #[test]
    fn recover_after_gc_uses_base_marks() {
        let (f, mut s) = state();
        s.commit(&[(0, kind::ROW_INSERT, 10)]).unwrap();
        s.commit(&[(0, kind::ROW_INSERT, 20)]).unwrap();
        s.gc(None).unwrap();
        s.commit(&[(0, kind::ROW_INSERT, 30)]).unwrap();
        s.flush().unwrap();
        let m = s.manifest();
        assert_eq!(m.base, vec![(0, Hlc::new(2, 7), 20)]);

        let f2 = f.reboot();
        let (r, rep) = MvccState::recover(&f2, &m, &[(0, kind::ROW_INSERT, 30)]).unwrap();
        assert_eq!(rep.changes_recovered, 10, "only post-floor records remain");
        assert_eq!(rep.entities_restamped, 0);
        assert_eq!(r.latest(0), 30);
        let snap_all = Snapshot {
            hlc: r.now(),
            epoch: r.epoch(),
        };
        assert_eq!(r.visible_at(&snap_all, 0), 30);
    }
}

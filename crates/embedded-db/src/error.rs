//! Error type of the embedded database.

use pds_flash::FlashError;
use pds_mcu::RamError;
use std::fmt;

/// Everything that can fail inside the embedded database.
#[derive(Debug)]
pub enum DbError {
    /// Underlying flash failure.
    Flash(FlashError),
    /// The operation does not fit the MCU RAM budget.
    Ram(RamError),
    /// Reference to an unknown table.
    UnknownTable(String),
    /// Reference to an unknown column.
    UnknownColumn { table: String, column: String },
    /// A climbing-index query addressed a table outside the schema tree.
    NotInSchemaTree(String),
    /// An append-only time-ordered store received a sample older than its
    /// tail. Out-of-order samples are a protocol error on sensor logs,
    /// surfaced to the caller instead of panicking the token.
    OutOfOrderTimestamp {
        /// Timestamp of the newest stored sample.
        last: u64,
        /// The offending (older) timestamp.
        got: u64,
    },
    /// A versioned-read or change-log operation was called on a database
    /// whose MVCC layer was never enabled.
    MvccDisabled,
    /// Stored bytes failed to decode.
    Corrupt(&'static str),
}

impl From<FlashError> for DbError {
    fn from(e: FlashError) -> Self {
        DbError::Flash(e)
    }
}

impl From<RamError> for DbError {
    fn from(e: RamError) -> Self {
        DbError::Ram(e)
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Flash(e) => write!(f, "flash: {e}"),
            DbError::Ram(e) => write!(f, "ram: {e}"),
            DbError::UnknownTable(t) => write!(f, "unknown table {t}"),
            DbError::UnknownColumn { table, column } => {
                write!(f, "unknown column {table}.{column}")
            }
            DbError::NotInSchemaTree(t) => write!(f, "table {t} not in schema tree"),
            DbError::OutOfOrderTimestamp { last, got } => {
                write!(
                    f,
                    "timestamps must be non-decreasing: got {got} after {last}"
                )
            }
            DbError::MvccDisabled => write!(f, "MVCC is not enabled on this database"),
            DbError::Corrupt(what) => write!(f, "corrupt {what}"),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(DbError::UnknownTable("X".into()).to_string().contains('X'));
        let e = DbError::UnknownColumn {
            table: "T".into(),
            column: "c".into(),
        };
        assert!(e.to_string().contains("T.c"));
        assert!(DbError::Corrupt("tree page").to_string().contains("tree"));
    }
}

//! Tselect / Tjoin — the climbing indexes of the SPJ slide.
//!
//! "Join algorithms consume lots of RAM … Q3: how to compute
//! select-project-join queries in pipeline?" The tutorial's answer, for an
//! acyclic schema rooted at the query root table:
//!
//! * **Tjoin (generalized join index)** — "each rowid of the root table
//!   contains the rowids of the tuples it refers to in the subtree".
//!   Fixed-size entries, directly addressable: dereferencing a root tuple
//!   to its full join context costs one page read.
//! * **Tselect** — a selection index on *any* table of the tree whose
//!   entries are **sorted rowids of the root table**: "each key of the
//!   index contains the rowids of the query root table referring to that
//!   key".
//!
//! Execution is then a pure pipeline: the sorted root-rowid lists produced
//! by the Tselect indexes are merge-intersected (no RAM-hungry sort — the
//! lists are "sorted row ids!" by construction), and each surviving root
//! rowid is dereferenced through Tjoin.
//!
//! Foreign keys in this crate hold the *rowid* of the referenced tuple
//! (the generators emit dense keys equal to rowids); a key-valued FK would
//! add one index lookup at Tjoin-build time and change nothing else.

use pds_flash::{Flash, Log};
use pds_mcu::RamBudget;

use crate::error::DbError;
use crate::sort::external_sort;
use crate::table::{RowId, Table};
use crate::tree::TreeIndex;
use crate::value::{Row, Value};

/// An acyclic schema tree rooted at the query root table.
pub struct SchemaTree {
    tables: Vec<String>,
    root: usize,
    /// `refs[t]` = (fk column index in `t`, referenced table index).
    refs: Vec<Vec<(usize, usize)>>,
    /// Tables in resolution order (root first, parents before the tables
    /// they are referenced from — i.e. DFS from the root).
    order: Vec<usize>,
}

/// Builder for [`SchemaTree`].
pub struct SchemaTreeBuilder {
    root: String,
    references: Vec<(String, String, String)>,
}

impl SchemaTree {
    /// Start building a tree rooted at `root` (the query root table).
    pub fn rooted_at(root: &str) -> SchemaTreeBuilder {
        SchemaTreeBuilder {
            root: root.to_string(),
            references: Vec::new(),
        }
    }

    /// Index of a table by name.
    pub fn table_index(&self, name: &str) -> Option<usize> {
        self.tables.iter().position(|t| t == name)
    }

    /// The root table index.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Ancestor tables (everything except the root), in Tjoin entry order.
    pub fn ancestors(&self) -> &[usize] {
        &self.order[1..]
    }

    /// All tables in resolution order (root first).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Table name by index.
    pub fn table_name(&self, idx: usize) -> &str {
        &self.tables[idx]
    }

    /// Resolve the rowids of every table of the tree for root row `r`,
    /// reading each ancestor tuple once. Returns rowids aligned with
    /// [`order`](Self::order).
    fn resolve(&self, tables: &[&Table], r: RowId) -> Result<Vec<RowId>, DbError> {
        let mut rowids = vec![u32::MAX; self.tables.len()];
        rowids[self.root] = r;
        for &t in &self.order {
            if self.refs[t].is_empty() {
                continue;
            }
            let row = tables[t].get(rowids[t])?;
            for &(col, to) in &self.refs[t] {
                let fk = row[col]
                    .as_u64()
                    .ok_or(DbError::Corrupt("non-integer foreign key"))?;
                rowids[to] = fk as RowId;
            }
        }
        Ok(self.order.iter().map(|&t| rowids[t]).collect())
    }
}

impl SchemaTreeBuilder {
    /// Declare `from.fk_col` references `to`.
    pub fn reference(mut self, from: &str, fk_col: &str, to: &str) -> Self {
        self.references
            .push((from.to_string(), fk_col.to_string(), to.to_string()));
        self
    }

    /// Resolve names against the actual tables and produce the tree.
    pub fn build(self, tables: &[&Table]) -> Result<SchemaTree, DbError> {
        let names: Vec<String> = tables.iter().map(|t| t.name().to_string()).collect();
        let find = |n: &str| -> Result<usize, DbError> {
            names
                .iter()
                .position(|x| x == n)
                .ok_or_else(|| DbError::UnknownTable(n.to_string()))
        };
        let root = find(&self.root)?;
        let mut refs: Vec<Vec<(usize, usize)>> = vec![Vec::new(); names.len()];
        for (from, col, to) in &self.references {
            let f = find(from)?;
            let t = find(to)?;
            let c = tables[f]
                .schema()
                .column_index(col)
                .ok_or_else(|| DbError::UnknownColumn {
                    table: from.clone(),
                    column: col.clone(),
                })?;
            refs[f].push((c, t));
        }
        // DFS from the root.
        let mut order = Vec::new();
        let mut stack = vec![root];
        let mut seen = vec![false; names.len()];
        while let Some(t) = stack.pop() {
            if seen[t] {
                continue;
            }
            seen[t] = true;
            order.push(t);
            for &(_, to) in refs[t].iter().rev() {
                stack.push(to);
            }
        }
        Ok(SchemaTree {
            tables: names,
            root,
            refs,
            order,
        })
    }
}

/// The generalized join index: root rowid → ancestor rowids, one page
/// read per dereference (fixed-size, directly addressed entries).
pub struct TjoinIndex {
    log: Log,
    /// Ancestor table indexes, the layout of each entry.
    ancestors: Vec<usize>,
    entries: u32,
    per_page: usize,
}

impl TjoinIndex {
    /// Build the index by resolving every root tuple's subtree.
    pub fn build(
        flash: &Flash,
        tree: &SchemaTree,
        tables: &[&Table],
    ) -> Result<TjoinIndex, DbError> {
        let ancestors: Vec<usize> = tree.ancestors().to_vec();
        let entry_size = ancestors.len().max(1) * 4;
        let page_size = flash.geometry().page_size;
        let per_page = (page_size - 2) / entry_size;
        let mut log = flash.new_log();
        let n = tables[tree.root()].num_rows();
        let mut page = vec![0xFFu8; page_size];
        let mut in_page = 0usize;
        for r in 0..n {
            let rowids = tree.resolve(tables, r)?;
            let off = 2 + in_page * entry_size;
            for (i, &rid) in rowids[1..].iter().enumerate() {
                page[off + i * 4..off + i * 4 + 4].copy_from_slice(&rid.to_le_bytes());
            }
            in_page += 1;
            if in_page == per_page {
                page[0..2].copy_from_slice(&(in_page as u16).to_le_bytes());
                log.append_raw_page(&page)?;
                page.fill(0xFF);
                in_page = 0;
            }
        }
        if in_page > 0 {
            page[0..2].copy_from_slice(&(in_page as u16).to_le_bytes());
            log.append_raw_page(&page)?;
        }
        Ok(TjoinIndex {
            log: log.seal()?,
            ancestors,
            entries: n,
            per_page,
        })
    }

    /// Number of root tuples indexed.
    pub fn num_entries(&self) -> u32 {
        self.entries
    }

    /// Ancestor table layout of each entry.
    pub fn ancestors(&self) -> &[usize] {
        &self.ancestors
    }

    /// Ancestor rowids of root row `r` (one page read).
    pub fn get(&self, r: RowId) -> Result<Vec<RowId>, DbError> {
        if r >= self.entries {
            return Err(DbError::Corrupt("tjoin rowid out of range"));
        }
        let page_idx = r as usize / self.per_page;
        let slot = r as usize % self.per_page;
        let page_size = self.log.flash().geometry().page_size;
        let mut buf = vec![0u8; page_size];
        self.log.read_raw_page(page_idx as u32, &mut buf)?;
        let entry_size = self.ancestors.len().max(1) * 4;
        let off = 2 + slot * entry_size;
        (0..self.ancestors.len())
            .map(|i| {
                buf.get(off + i * 4..off + i * 4 + 4)
                    .and_then(|s| s.try_into().ok())
                    .map(u32::from_le_bytes)
                    .ok_or(DbError::Corrupt("tjoin entry past page end"))
            })
            .collect()
    }
}

/// A selection index on any table of the tree, keyed by an attribute and
/// listing *sorted root rowids*.
pub struct TselectIndex {
    tree_index: TreeIndex,
    /// The table the predicate applies to.
    pub table: usize,
    /// The predicate column within that table.
    pub column: usize,
}

impl TselectIndex {
    /// Build a Tselect on `table_name.column` over the whole root table.
    pub fn build(
        flash: &Flash,
        ram: &RamBudget,
        tree: &SchemaTree,
        tables: &[&Table],
        table_name: &str,
        column: &str,
    ) -> Result<TselectIndex, DbError> {
        let t = tree
            .table_index(table_name)
            .ok_or_else(|| DbError::UnknownTable(table_name.to_string()))?;
        let c = tables[t]
            .schema()
            .column_index(column)
            .ok_or_else(|| DbError::UnknownColumn {
                table: table_name.to_string(),
                column: column.to_string(),
            })?;
        let pos_in_order = tree
            .order()
            .iter()
            .position(|&x| x == t)
            .ok_or_else(|| DbError::NotInSchemaTree(table_name.to_string()))?;
        // Stage the (key, root_rowid) pairs into a temporary log, then
        // sort them — construction uses only log structures.
        let mut staging = flash.new_log();
        let n = tables[tree.root()].num_rows();
        for r in 0..n {
            let rowids = tree.resolve(tables, r)?;
            let target_row = tables[t].get(rowids[pos_in_order])?;
            let key = target_row[c].to_key_bytes();
            let mut rec = Vec::with_capacity(2 + key.len() + 4);
            rec.extend_from_slice(&(key.len() as u16).to_le_bytes());
            rec.extend_from_slice(&key);
            rec.extend_from_slice(&r.to_le_bytes());
            staging.append(&rec)?;
        }
        let staging = staging.seal()?;
        let err = std::cell::RefCell::new(None);
        let entries = staging.reader().map_while(|rec| match rec {
            Ok(bytes) => crate::sort::decode_entry(&bytes),
            Err(e) => {
                *err.borrow_mut() = Some(DbError::Flash(e));
                None
            }
        });
        let sorted = external_sort(flash, ram, entries, 8 * 1024, 8)?;
        staging.reclaim();
        if let Some(e) = err.into_inner() {
            sorted.reclaim();
            return Err(e);
        }
        let err2 = std::cell::RefCell::new(None);
        let sorted_entries = sorted.reader().map_while(|rec| match rec {
            Ok(bytes) => crate::sort::decode_entry(&bytes),
            Err(e) => {
                *err2.borrow_mut() = Some(DbError::Flash(e));
                None
            }
        });
        let tree_index = TreeIndex::build(flash, sorted_entries)?;
        sorted.reclaim();
        if let Some(e) = err2.into_inner() {
            tree_index.reclaim();
            return Err(e);
        }
        Ok(TselectIndex {
            tree_index,
            table: t,
            column: c,
        })
    }

    /// Sorted root rowids whose subtree reaches `key` on this attribute.
    pub fn lookup(&self, key: &Value) -> Result<Vec<RowId>, DbError> {
        self.tree_index.lookup(&key.to_key_bytes())
    }
}

/// One joined result: the root row followed by the ancestor rows in
/// [`SchemaTree::ancestors`] order.
pub type JoinedRow = Vec<Row>;

/// Execute a select-project-join in pipeline: merge-intersect the sorted
/// root-rowid lists of the Tselect predicates, then dereference each
/// survivor through Tjoin.
pub fn execute_spj(
    tree: &SchemaTree,
    tables: &[&Table],
    tjoin: &TjoinIndex,
    selects: &[(&TselectIndex, Value)],
) -> Result<Vec<JoinedRow>, DbError> {
    // pds-lint: allow(panic.assert) — query-plan shape check on the caller's
    // statically-built predicate list, not on stored data.
    assert!(!selects.is_empty(), "at least one predicate");
    // Sorted rowid streams from each Tselect.
    let lists: Vec<Vec<RowId>> = selects
        .iter()
        .map(|(idx, v)| idx.lookup(v))
        .collect::<Result<_, _>>()?;
    // Multi-way sorted intersection (the tutorial's "sorted row ids!").
    let survivors = intersect_sorted(&lists);
    let mut out = Vec::with_capacity(survivors.len());
    for r in survivors {
        let ancestor_rowids = tjoin.get(r)?;
        let mut joined: JoinedRow = Vec::with_capacity(1 + ancestor_rowids.len());
        joined.push(tables[tree.root()].get(r)?);
        for (&t, &rid) in tjoin.ancestors().iter().zip(&ancestor_rowids) {
            joined.push(tables[t].get(rid)?);
        }
        out.push(joined);
    }
    Ok(out)
}

/// Intersect ascending rowid lists by synchronized advance.
fn intersect_sorted(lists: &[Vec<RowId>]) -> Vec<RowId> {
    if lists.iter().any(|l| l.is_empty()) {
        return Vec::new();
    }
    let mut cursors = vec![0usize; lists.len()];
    let mut out = Vec::new();
    'outer: loop {
        let mut candidate = lists[0][cursors[0]];
        let mut advanced = true;
        while advanced {
            advanced = false;
            for (i, list) in lists.iter().enumerate() {
                while list[cursors[i]] < candidate {
                    cursors[i] += 1;
                    if cursors[i] >= list.len() {
                        break 'outer;
                    }
                }
                if list[cursors[i]] > candidate {
                    candidate = list[cursors[i]];
                    advanced = true;
                }
            }
        }
        out.push(candidate);
        for (i, list) in lists.iter().enumerate() {
            cursors[i] += 1;
            if cursors[i] >= list.len() {
                break 'outer;
            }
        }
    }
    out
}

/// Baseline for experiment E4: the same SPJ with no climbing indexes —
/// full scan of the root table, per-row dereference of every ancestor,
/// predicate checks on the materialized join.
pub fn execute_spj_naive(
    tree: &SchemaTree,
    tables: &[&Table],
    selects: &[(usize, usize, Value)],
) -> Result<Vec<JoinedRow>, DbError> {
    let root = tree.root();
    let n = tables[root].num_rows();
    // Resolve each predicate's table to its slot in the join order once,
    // up front; a predicate on a table outside the tree is a caller error,
    // not a reason to panic mid-scan.
    let positions: Vec<usize> = selects
        .iter()
        .map(|(t, _, _)| {
            tree.order()
                .iter()
                .position(|x| x == t)
                .ok_or_else(|| DbError::NotInSchemaTree(format!("table #{t}")))
        })
        .collect::<Result<_, _>>()?;
    let mut out = Vec::new();
    for r in 0..n {
        let rowids = tree.resolve(tables, r)?;
        let rows: Vec<Row> = tree
            .order()
            .iter()
            .zip(&rowids)
            .map(|(&t, &rid)| tables[t].get(rid))
            .collect::<Result<_, _>>()?;
        let keep = selects
            .iter()
            .zip(&positions)
            .all(|((_, c, v), &pos)| &rows[pos][*c] == v);
        if keep {
            out.push(rows);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ColumnType, Schema};

    /// Tiny 3-level schema: LINE → ORDER → CUSTOMER.
    fn setup() -> (Flash, RamBudget, Vec<Table>) {
        let f = Flash::small(1024);
        let ram = RamBudget::new(64 * 1024);
        let mut customer = Table::new(
            &f,
            "CUSTOMER",
            Schema::new(&[("ckey", ColumnType::U64), ("segment", ColumnType::Str)]),
        );
        let mut orders = Table::new(
            &f,
            "ORDERS",
            Schema::new(&[("okey", ColumnType::U64), ("ckey", ColumnType::U64)]),
        );
        let mut line = Table::new(
            &f,
            "LINEITEM",
            Schema::new(&[
                ("okey", ColumnType::U64),
                ("qty", ColumnType::U64),
                ("color", ColumnType::Str),
            ]),
        );
        // 4 customers, alternating segments.
        for c in 0..4u64 {
            let seg = if c % 2 == 0 { "HOUSEHOLD" } else { "AUTO" };
            customer
                .insert(&vec![Value::U64(c), Value::str(seg)])
                .unwrap();
        }
        // 8 orders, round-robin customers.
        for o in 0..8u64 {
            orders
                .insert(&vec![Value::U64(o), Value::U64(o % 4)])
                .unwrap();
        }
        // 24 lineitems, 3 per order, alternating colors.
        for l in 0..24u64 {
            let color = if l % 3 == 0 { "red" } else { "blue" };
            line.insert(&vec![Value::U64(l / 3), Value::U64(l), Value::str(color)])
                .unwrap();
        }
        (f, ram, vec![customer, orders, line])
    }

    fn tree_of(tables: &[&Table]) -> SchemaTree {
        SchemaTree::rooted_at("LINEITEM")
            .reference("LINEITEM", "okey", "ORDERS")
            .reference("ORDERS", "ckey", "CUSTOMER")
            .build(tables)
            .unwrap()
    }

    #[test]
    fn schema_tree_resolution_order() {
        let (_f, _ram, tables) = setup();
        let refs: Vec<&Table> = tables.iter().collect();
        let tree = tree_of(&refs);
        assert_eq!(tree.table_name(tree.root()), "LINEITEM");
        let names: Vec<&str> = tree.order().iter().map(|&t| tree.table_name(t)).collect();
        assert_eq!(names, vec!["LINEITEM", "ORDERS", "CUSTOMER"]);
    }

    #[test]
    fn tjoin_dereferences_in_one_read() {
        let (f, _ram, tables) = setup();
        let refs: Vec<&Table> = tables.iter().collect();
        let tree = tree_of(&refs);
        let tjoin = TjoinIndex::build(&f, &tree, &refs).unwrap();
        assert_eq!(tjoin.num_entries(), 24);
        // Lineitem 10 → order 3 → customer 3.
        let before = f.stats();
        let anc = tjoin.get(10).unwrap();
        assert_eq!((f.stats() - before).page_reads, 1);
        assert_eq!(anc, vec![3, 3]);
        assert!(tjoin.get(24).is_err());
    }

    #[test]
    fn tselect_returns_sorted_root_rowids() {
        let (f, ram, tables) = setup();
        let refs: Vec<&Table> = tables.iter().collect();
        let tree = tree_of(&refs);
        let tsel = TselectIndex::build(&f, &ram, &tree, &refs, "CUSTOMER", "segment").unwrap();
        let rowids = tsel.lookup(&Value::str("HOUSEHOLD")).unwrap();
        // Customers 0 and 2 → orders 0,2,4,6 → lineitems 0..3×order.
        let expected: Vec<RowId> = (0..24u32).filter(|l| (l / 3) % 2 == 0).collect();
        assert_eq!(rowids, expected);
        assert!(rowids.windows(2).all(|w| w[0] < w[1]), "sorted");
    }

    #[test]
    fn spj_matches_naive_baseline() {
        let (f, ram, tables) = setup();
        let refs: Vec<&Table> = tables.iter().collect();
        let tree = tree_of(&refs);
        let tjoin = TjoinIndex::build(&f, &tree, &refs).unwrap();
        let seg_idx = TselectIndex::build(&f, &ram, &tree, &refs, "CUSTOMER", "segment").unwrap();
        let color_idx = TselectIndex::build(&f, &ram, &tree, &refs, "LINEITEM", "color").unwrap();
        let fast = execute_spj(
            &tree,
            &refs,
            &tjoin,
            &[
                (&seg_idx, Value::str("HOUSEHOLD")),
                (&color_idx, Value::str("red")),
            ],
        )
        .unwrap();
        let cust = tree.table_index("CUSTOMER").unwrap();
        let li = tree.table_index("LINEITEM").unwrap();
        let naive = execute_spj_naive(
            &tree,
            &refs,
            &[
                (cust, 1, Value::str("HOUSEHOLD")),
                (li, 2, Value::str("red")),
            ],
        )
        .unwrap();
        assert_eq!(fast.len(), naive.len());
        assert!(!fast.is_empty());
        for (a, b) in fast.iter().zip(&naive) {
            assert_eq!(a, b);
        }
        // Every result satisfies both predicates.
        for joined in &fast {
            assert_eq!(joined[0][2], Value::str("red"));
            assert_eq!(joined[2][1], Value::str("HOUSEHOLD"));
        }
    }

    #[test]
    fn empty_intersection() {
        let (f, ram, tables) = setup();
        let refs: Vec<&Table> = tables.iter().collect();
        let tree = tree_of(&refs);
        let tjoin = TjoinIndex::build(&f, &tree, &refs).unwrap();
        let seg_idx = TselectIndex::build(&f, &ram, &tree, &refs, "CUSTOMER", "segment").unwrap();
        let res = execute_spj(
            &tree,
            &refs,
            &tjoin,
            &[(&seg_idx, Value::str("NO-SUCH-SEGMENT"))],
        )
        .unwrap();
        assert!(res.is_empty());
    }

    #[test]
    fn intersect_sorted_cases() {
        assert_eq!(
            intersect_sorted(&[vec![1, 3, 5, 7], vec![3, 4, 5], vec![0, 3, 5, 9]]),
            vec![3, 5]
        );
        assert_eq!(intersect_sorted(&[vec![1, 2], vec![]]), Vec::<RowId>::new());
        assert_eq!(intersect_sorted(&[vec![4, 8]]), vec![4, 8]);
        assert_eq!(
            intersect_sorted(&[vec![1, 2, 3], vec![4, 5]]),
            Vec::<RowId>::new()
        );
    }

    #[test]
    fn builder_rejects_unknown_names() {
        let (_f, _ram, tables) = setup();
        let refs: Vec<&Table> = tables.iter().collect();
        assert!(matches!(
            SchemaTree::rooted_at("NOPE").build(&refs),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            SchemaTree::rooted_at("LINEITEM")
                .reference("LINEITEM", "nocol", "ORDERS")
                .build(&refs),
            Err(DbError::UnknownColumn { .. })
        ));
    }
}

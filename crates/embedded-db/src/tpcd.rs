//! A TPC-D-like personal dataset generator.
//!
//! The SPJ slide runs its query on "TPCD like" data: CUSTOMER, ORDERS,
//! LINEITEM, PARTSUPP, SUPPLIER, with `CUS.Mktsegment = 'HOUSEHOLD' AND
//! SUP.Name = 'SUPPLIER-1'`. This module generates that schema at a
//! configurable scale, together with the schema tree rooted at LINEITEM
//! (the query root: each lineitem climbs to its order → customer and its
//! partsupp → supplier).
//!
//! Foreign keys are dense rowids (see [`crate::climbing`]).

use pds_flash::Flash;
use pds_obs::rng::Rng;

use crate::climbing::SchemaTree;
use crate::error::DbError;
use crate::table::Table;
use crate::value::{ColumnType, Schema, Value};

/// The five market segments of TPC-D/H.
pub const SEGMENTS: &[&str] = &[
    "HOUSEHOLD",
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
];

/// Dataset dimensions.
#[derive(Debug, Clone, Copy)]
pub struct TpcdConfig {
    /// Number of customers.
    pub customers: u32,
    /// Number of suppliers.
    pub suppliers: u32,
    /// Number of partsupp rows.
    pub partsupps: u32,
    /// Orders per customer.
    pub orders_per_customer: u32,
    /// Lineitems per order.
    pub lineitems_per_order: u32,
}

impl TpcdConfig {
    /// A tiny instance for unit tests.
    pub fn tiny() -> Self {
        TpcdConfig {
            customers: 10,
            suppliers: 5,
            partsupps: 20,
            orders_per_customer: 3,
            lineitems_per_order: 2,
        }
    }

    /// A bench-scale instance (≈ `sf` × 1000 lineitems).
    pub fn scale(sf: u32) -> Self {
        TpcdConfig {
            customers: 25 * sf,
            suppliers: 10 * sf.max(1),
            partsupps: 80 * sf,
            orders_per_customer: 5,
            lineitems_per_order: 8,
        }
    }

    /// Total lineitems this configuration produces.
    pub fn num_lineitems(&self) -> u32 {
        self.customers * self.orders_per_customer * self.lineitems_per_order
    }
}

/// The generated dataset: five tables plus the LINEITEM-rooted schema
/// tree.
pub struct TpcdData {
    /// CUSTOMER(custkey, name, city, mktsegment).
    pub customer: Table,
    /// ORDERS(orderkey, custkey→CUSTOMER, orderdate).
    pub orders: Table,
    /// SUPPLIER(suppkey, name, city).
    pub supplier: Table,
    /// PARTSUPP(pskey, suppkey→SUPPLIER, partkey, availqty).
    pub partsupp: Table,
    /// LINEITEM(orderkey→ORDERS, pskey→PARTSUPP, quantity, price).
    pub lineitem: Table,
}

impl TpcdData {
    /// Generate a dataset on `flash`.
    pub fn generate(
        flash: &Flash,
        cfg: &TpcdConfig,
        rng: &mut impl Rng,
    ) -> Result<TpcdData, DbError> {
        let mut customer = Table::new(
            flash,
            "CUSTOMER",
            Schema::new(&[
                ("custkey", ColumnType::U64),
                ("name", ColumnType::Str),
                ("city", ColumnType::Str),
                ("mktsegment", ColumnType::Str),
            ]),
        );
        let cities = ["Lyon", "Paris", "Nice", "Lille", "Nantes"];
        for c in 0..cfg.customers {
            customer.insert(&vec![
                Value::U64(c as u64),
                Value::Str(format!("Customer-{c}")),
                Value::str(cities[rng.gen_range(0..cities.len())]),
                Value::str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
            ])?;
        }
        let mut supplier = Table::new(
            flash,
            "SUPPLIER",
            Schema::new(&[
                ("suppkey", ColumnType::U64),
                ("name", ColumnType::Str),
                ("city", ColumnType::Str),
            ]),
        );
        for s in 0..cfg.suppliers {
            supplier.insert(&vec![
                Value::U64(s as u64),
                Value::Str(format!("SUPPLIER-{s}")),
                Value::str(cities[rng.gen_range(0..cities.len())]),
            ])?;
        }
        let mut partsupp = Table::new(
            flash,
            "PARTSUPP",
            Schema::new(&[
                ("pskey", ColumnType::U64),
                ("suppkey", ColumnType::U64),
                ("partkey", ColumnType::U64),
                ("availqty", ColumnType::U64),
            ]),
        );
        for p in 0..cfg.partsupps {
            partsupp.insert(&vec![
                Value::U64(p as u64),
                Value::U64(rng.gen_range(0..cfg.suppliers) as u64),
                Value::U64(rng.gen_range(0..10_000)),
                Value::U64(rng.gen_range(1..1000)),
            ])?;
        }
        let mut orders = Table::new(
            flash,
            "ORDERS",
            Schema::new(&[
                ("orderkey", ColumnType::U64),
                ("custkey", ColumnType::U64),
                ("orderdate", ColumnType::U64),
            ]),
        );
        let mut okey = 0u64;
        for c in 0..cfg.customers {
            for _ in 0..cfg.orders_per_customer {
                orders.insert(&vec![
                    Value::U64(okey),
                    Value::U64(c as u64),
                    Value::U64(rng.gen_range(19_920_101..19_981_231)),
                ])?;
                okey += 1;
            }
        }
        let mut lineitem = Table::new(
            flash,
            "LINEITEM",
            Schema::new(&[
                ("orderkey", ColumnType::U64),
                ("pskey", ColumnType::U64),
                ("quantity", ColumnType::U64),
                ("price", ColumnType::U64),
            ]),
        );
        for o in 0..okey {
            for _ in 0..cfg.lineitems_per_order {
                lineitem.insert(&vec![
                    Value::U64(o),
                    Value::U64(rng.gen_range(0..cfg.partsupps) as u64),
                    Value::U64(rng.gen_range(1..50)),
                    Value::U64(rng.gen_range(100..100_000)),
                ])?;
            }
        }
        for t in [
            &mut customer,
            &mut supplier,
            &mut partsupp,
            &mut orders,
            &mut lineitem,
        ] {
            t.flush()?;
        }
        Ok(TpcdData {
            customer,
            orders,
            supplier,
            partsupp,
            lineitem,
        })
    }

    /// The tables in a stable order for [`SchemaTree`] construction.
    pub fn tables(&self) -> Vec<&Table> {
        vec![
            &self.lineitem,
            &self.orders,
            &self.customer,
            &self.partsupp,
            &self.supplier,
        ]
    }

    /// The LINEITEM-rooted schema tree of the tutorial's query.
    pub fn schema_tree(&self) -> Result<SchemaTree, DbError> {
        SchemaTree::rooted_at("LINEITEM")
            .reference("LINEITEM", "orderkey", "ORDERS")
            .reference("LINEITEM", "pskey", "PARTSUPP")
            .reference("ORDERS", "custkey", "CUSTOMER")
            .reference("PARTSUPP", "suppkey", "SUPPLIER")
            .build(&self.tables())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::climbing::{execute_spj, execute_spj_naive, TjoinIndex, TselectIndex};
    use pds_mcu::RamBudget;
    use pds_obs::rng::SeedableRng;
    use pds_obs::rng::StdRng;

    #[test]
    fn generated_cardinalities_match_config() {
        let f = Flash::small(2048);
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = TpcdConfig::tiny();
        let d = TpcdData::generate(&f, &cfg, &mut rng).unwrap();
        assert_eq!(d.customer.num_rows(), 10);
        assert_eq!(d.orders.num_rows(), 30);
        assert_eq!(d.lineitem.num_rows(), 60);
        assert_eq!(d.partsupp.num_rows(), 20);
        assert_eq!(d.supplier.num_rows(), 5);
    }

    #[test]
    fn schema_tree_covers_all_five_tables() {
        let f = Flash::small(2048);
        let mut rng = StdRng::seed_from_u64(2);
        let d = TpcdData::generate(&f, &TpcdConfig::tiny(), &mut rng).unwrap();
        let tree = d.schema_tree().unwrap();
        assert_eq!(tree.order().len(), 5);
        assert_eq!(tree.table_name(tree.root()), "LINEITEM");
    }

    #[test]
    fn tutorial_query_runs_and_matches_naive() {
        // The slide's query: CUS.Mktsegment = 'HOUSEHOLD'
        //                AND SUP.Name = 'SUPPLIER-1'.
        let f = Flash::small(8192);
        let ram = RamBudget::new(64 * 1024);
        let mut rng = StdRng::seed_from_u64(3);
        let d = TpcdData::generate(&f, &TpcdConfig::scale(2), &mut rng).unwrap();
        let tree = d.schema_tree().unwrap();
        let tables = d.tables();
        let tjoin = TjoinIndex::build(&f, &tree, &tables).unwrap();
        let seg = TselectIndex::build(&f, &ram, &tree, &tables, "CUSTOMER", "mktsegment").unwrap();
        let sup = TselectIndex::build(&f, &ram, &tree, &tables, "SUPPLIER", "name").unwrap();
        let fast = execute_spj(
            &tree,
            &tables,
            &tjoin,
            &[
                (&seg, Value::str("HOUSEHOLD")),
                (&sup, Value::str("SUPPLIER-1")),
            ],
        )
        .unwrap();
        let cust = tree.table_index("CUSTOMER").unwrap();
        let supp = tree.table_index("SUPPLIER").unwrap();
        let naive = execute_spj_naive(
            &tree,
            &tables,
            &[
                (cust, 3, Value::str("HOUSEHOLD")),
                (supp, 1, Value::str("SUPPLIER-1")),
            ],
        )
        .unwrap();
        assert_eq!(fast, naive);
        assert!(!fast.is_empty(), "scale 2 should produce matches");
    }
}

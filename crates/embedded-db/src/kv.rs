//! Embedded key-value store — the tutorial's "noSQL & key-value stores"
//! challenge.
//!
//! The cited state of the art (SkimpyStash, SILT, LogBase) keeps "an
//! index in RAM to index that log (~1 B per key-value pair)" — which the
//! tutorial rules "incompatible with small RAM". This store applies the
//! PBFilter recipe instead:
//!
//! * puts (and deletes, as tombstones) append to a sequential **data
//!   log**; the *latest* version of a key wins;
//! * a **Bloom summary log** holds one filter per data page;
//! * `get` scans the summaries **backward** (recent pages first) and
//!   probes only positive pages, stopping at the first version found —
//!   RAM stays at one page no matter how many keys live in the store;
//! * a **compaction** (the reorganization of this model) rewrites only
//!   live versions into a fresh log and reclaims the old one wholesale.

use std::collections::HashSet;

use pds_crypto::BloomFilter;
use pds_flash::{Flash, FlashError, LogWriter};

const PAGE_HEADER: usize = 2;

/// Entry kinds in the data log.
const KIND_PUT: u8 = 0;
const KIND_DELETE: u8 = 1;

/// A log-structured key-value store with Bloom page summaries.
pub struct KvStore {
    flash: Flash,
    data: LogWriter,
    summaries: LogWriter,
    /// Entries of the page being filled: (kind, key, value).
    pending: Vec<(u8, Vec<u8>, Vec<u8>)>,
    pending_bytes: usize,
    /// Live-key estimate for compaction decisions.
    puts: u64,
    deletes: u64,
}

impl KvStore {
    /// An empty store on `flash`.
    pub fn new(flash: &Flash) -> Self {
        KvStore {
            flash: flash.clone(),
            data: flash.new_log(),
            summaries: flash.new_log(),
            pending: Vec::new(),
            pending_bytes: PAGE_HEADER,
            puts: 0,
            deletes: 0,
        }
    }

    fn entry_bytes(key: &[u8], value: &[u8]) -> usize {
        1 + 2 + key.len() + 2 + value.len()
    }

    /// Data pages written.
    pub fn num_data_pages(&self) -> u32 {
        self.data.num_pages()
    }

    /// Versions appended (puts + deletes), live or stale.
    pub fn num_versions(&self) -> u64 {
        self.puts + self.deletes
    }

    /// Store `key → value` (a new version shadows any older one).
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), FlashError> {
        self.append_entry(KIND_PUT, key, value)?;
        self.puts += 1;
        Ok(())
    }

    /// Delete `key` (a tombstone shadows older versions).
    pub fn delete(&mut self, key: &[u8]) -> Result<(), FlashError> {
        self.append_entry(KIND_DELETE, key, &[])?;
        self.deletes += 1;
        Ok(())
    }

    fn append_entry(&mut self, kind: u8, key: &[u8], value: &[u8]) -> Result<(), FlashError> {
        let page_size = self.flash.geometry().page_size;
        let sz = Self::entry_bytes(key, value);
        if sz + PAGE_HEADER > page_size {
            return Err(FlashError::RecordTooLarge {
                len: sz,
                max: page_size - PAGE_HEADER,
            });
        }
        if self.pending_bytes + sz > page_size {
            self.flush_page()?;
        }
        self.pending.push((kind, key.to_vec(), value.to_vec()));
        self.pending_bytes += sz;
        Ok(())
    }

    fn flush_page(&mut self) -> Result<(), FlashError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let page_size = self.flash.geometry().page_size;
        let mut page = vec![0xFFu8; page_size];
        page[0..2].copy_from_slice(&(self.pending.len() as u16).to_le_bytes());
        let mut off = PAGE_HEADER;
        let mut bf = BloomFilter::per_key_16bits(self.pending.len());
        for (kind, key, value) in &self.pending {
            page[off] = *kind;
            off += 1;
            page[off..off + 2].copy_from_slice(&(key.len() as u16).to_le_bytes());
            off += 2;
            page[off..off + key.len()].copy_from_slice(key);
            off += key.len();
            page[off..off + 2].copy_from_slice(&(value.len() as u16).to_le_bytes());
            off += 2;
            page[off..off + value.len()].copy_from_slice(value);
            off += value.len();
            bf.insert(key);
        }
        self.data.append_raw_page(&page)?;
        self.summaries.append(&bf.to_bytes())?;
        self.pending.clear();
        self.pending_bytes = PAGE_HEADER;
        Ok(())
    }

    /// Force buffered entries to flash.
    pub fn flush(&mut self) -> Result<(), FlashError> {
        self.flush_page()?;
        self.summaries.flush()
    }

    fn decode_page(buf: &[u8]) -> Vec<(u8, Vec<u8>, Vec<u8>)> {
        let count = u16::from_le_bytes([buf[0], buf[1]]) as usize;
        let mut off = PAGE_HEADER;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let kind = buf[off];
            off += 1;
            let klen = u16::from_le_bytes([buf[off], buf[off + 1]]) as usize;
            off += 2;
            let key = buf[off..off + klen].to_vec();
            off += klen;
            let vlen = u16::from_le_bytes([buf[off], buf[off + 1]]) as usize;
            off += 2;
            let value = buf[off..off + vlen].to_vec();
            off += vlen;
            out.push((kind, key, value));
        }
        out
    }

    /// Latest value of `key`, `None` if absent or deleted.
    ///
    /// Backward summary scan: the most recent version wins, so the scan
    /// stops at the first page that actually contains the key.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, FlashError> {
        // Most recent first: the RAM-pending entries.
        for (kind, k, v) in self.pending.iter().rev() {
            if k == key {
                return Ok((*kind == KIND_PUT).then(|| v.clone()));
            }
        }
        // Collect summaries (they are small records; the scan below reads
        // summary pages sequentially, newest data probed first).
        let mut filters: Vec<BloomFilter> = Vec::new();
        for p in 0..self.summaries.num_pages() {
            for rec in self.summaries.read_page_records(p)? {
                filters.push(
                    BloomFilter::from_bytes(&rec)
                        .ok_or(FlashError::CorruptPage(pds_flash::PageAddr(p)))?,
                );
            }
        }
        for rec in self.summaries.buffered_records() {
            filters.push(BloomFilter::from_bytes(&rec).ok_or(FlashError::BadRecordAddr)?);
        }
        let page_size = self.flash.geometry().page_size;
        let mut buf = vec![0u8; page_size];
        for (idx, bf) in filters.iter().enumerate().rev() {
            if !bf.maybe_contains(key) {
                continue;
            }
            let addr = self.data.page_addr(idx as u32)?;
            self.flash.read_page(addr, &mut buf)?;
            for (kind, k, v) in Self::decode_page(&buf).into_iter().rev() {
                if k == key {
                    return Ok((kind == KIND_PUT).then_some(v));
                }
            }
            // False positive: keep scanning older pages.
        }
        Ok(None)
    }

    /// Fraction of appended versions that are stale (shadowed or
    /// tombstoned) — the compaction trigger metric.
    pub fn estimated_garbage_ratio(&self) -> f64 {
        if self.puts + self.deletes == 0 {
            return 0.0;
        }
        // Upper bound: every delete shadows one put; duplicates unknown
        // without a scan, so this is the caller's heuristic floor.
        (2 * self.deletes) as f64 / (self.puts + self.deletes) as f64
    }

    /// Compaction: rewrite only the *live* versions into a fresh store
    /// and reclaim this one's blocks wholesale. RAM: one page buffer +
    /// the set of keys already emitted (charged to the caller's budget in
    /// a full deployment; bounded by the live-key count).
    pub fn compact(self) -> Result<KvStore, FlashError> {
        let mut new = KvStore::new(&self.flash);
        let mut seen: HashSet<Vec<u8>> = HashSet::new();
        // Newest → oldest: first version of a key seen is the live one.
        let mut live: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for (kind, k, v) in self.pending.iter().rev() {
            if seen.insert(k.clone()) && *kind == KIND_PUT {
                live.push((k.clone(), v.clone()));
            }
        }
        let page_size = self.flash.geometry().page_size;
        let mut buf = vec![0u8; page_size];
        for idx in (0..self.data.num_pages()).rev() {
            let addr = self.data.page_addr(idx)?;
            self.flash.read_page(addr, &mut buf)?;
            for (kind, k, v) in Self::decode_page(&buf).into_iter().rev() {
                if seen.insert(k.clone()) && kind == KIND_PUT {
                    live.push((k, v));
                }
            }
        }
        // Rewrite live pairs (oldest-first for stable ordering).
        for (k, v) in live.into_iter().rev() {
            new.put(&k, &v)?;
        }
        new.flush()?;
        // Reclaim the old logs at block grain.
        self.data.discard();
        self.summaries.discard();
        Ok(new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_obs::rng::{Rng, SeedableRng, StdRng};
    use std::collections::HashMap;

    fn flash() -> Flash {
        Flash::small(256)
    }

    #[test]
    fn put_get_roundtrip_and_shadowing() {
        let f = flash();
        let mut kv = KvStore::new(&f);
        kv.put(b"city", b"Lyon").unwrap();
        kv.put(b"name", b"Alice").unwrap();
        assert_eq!(kv.get(b"city").unwrap().unwrap(), b"Lyon");
        kv.put(b"city", b"Paris").unwrap();
        assert_eq!(kv.get(b"city").unwrap().unwrap(), b"Paris", "latest wins");
        assert_eq!(kv.get(b"unknown").unwrap(), None);
    }

    #[test]
    fn tombstones_delete() {
        let f = flash();
        let mut kv = KvStore::new(&f);
        kv.put(b"k", b"v").unwrap();
        kv.flush().unwrap();
        kv.delete(b"k").unwrap();
        assert_eq!(kv.get(b"k").unwrap(), None);
        kv.put(b"k", b"v2").unwrap();
        assert_eq!(kv.get(b"k").unwrap().unwrap(), b"v2");
    }

    #[test]
    fn get_reads_few_pages_despite_many_versions() {
        let f = Flash::small(1024);
        let mut kv = KvStore::new(&f);
        for i in 0..2000u32 {
            kv.put(format!("key-{}", i % 100).as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        kv.flush().unwrap();
        f.reset_stats();
        let v = kv.get(b"key-50").unwrap().unwrap();
        assert_eq!(u32::from_le_bytes(v.try_into().unwrap()), 1950);
        let reads = f.stats().page_reads;
        // Summaries + the one (most recent) data page holding key-50.
        assert!(
            reads < kv.num_data_pages() as u64 / 3,
            "{reads} reads vs {} data pages",
            kv.num_data_pages()
        );
    }

    #[test]
    fn compaction_drops_stale_versions_and_preserves_state() {
        let f = Flash::small(1024);
        let before_free = f.free_blocks();
        let mut kv = KvStore::new(&f);
        for round in 0..10u32 {
            for k in 0..50u32 {
                kv.put(&k.to_le_bytes(), &(k * 1000 + round).to_le_bytes())
                    .unwrap();
            }
        }
        for k in 40..50u32 {
            kv.delete(&k.to_le_bytes()).unwrap();
        }
        kv.flush().unwrap();
        let pages_before = kv.num_data_pages();
        let kv = kv.compact().unwrap();
        assert!(kv.num_data_pages() < pages_before / 3, "compaction shrinks");
        for k in 0..40u32 {
            let v = kv.get(&k.to_le_bytes()).unwrap().unwrap();
            assert_eq!(u32::from_le_bytes(v.try_into().unwrap()), k * 1000 + 9);
        }
        for k in 40..50u32 {
            assert_eq!(kv.get(&k.to_le_bytes()).unwrap(), None);
        }
        // No block leaked: only the compacted store holds blocks now.
        assert!(f.free_blocks() > before_free - 10);
    }

    #[test]
    fn garbage_ratio_reflects_deletes() {
        let f = flash();
        let mut kv = KvStore::new(&f);
        assert_eq!(kv.estimated_garbage_ratio(), 0.0);
        kv.put(b"a", b"1").unwrap();
        kv.delete(b"a").unwrap();
        assert!(kv.estimated_garbage_ratio() > 0.5);
    }

    #[test]
    fn prop_matches_hashmap_model() {
        for case in 0..16u64 {
            let mut rng = StdRng::seed_from_u64(0x4B00 + case);
            let f = Flash::small(1024);
            let mut kv = KvStore::new(&f);
            let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
            for _ in 0..rng.gen_range(1usize..400) {
                let op: u8 = rng.gen_range(0u8..3);
                let k = vec![rng.gen_range(0u8..20)];
                match op {
                    0 | 1 => {
                        let v = rng.gen::<u16>().to_le_bytes().to_vec();
                        kv.put(&k, &v).unwrap();
                        model.insert(k, v);
                    }
                    _ => {
                        kv.delete(&k).unwrap();
                        model.remove(&k);
                    }
                }
            }
            for key in 0u8..20 {
                let k = vec![key];
                assert_eq!(kv.get(&k).unwrap(), model.get(&k).cloned(), "case {case}");
            }
            // Compaction preserves the model too.
            let kv = kv.compact().unwrap();
            for key in 0u8..20 {
                let k = vec![key];
                assert_eq!(kv.get(&k).unwrap(), model.get(&k).cloned(), "case {case}");
            }
        }
    }
}

//! A B-tree-like index built strictly sequentially.
//!
//! Step 2 of a reorganization: "Build a key hierarchy → no need of
//! temporary logs → result is written sequentially: «Tree». Result:
//! efficient B-Tree-like index."
//!
//! The build consumes a *sorted* `(key, rowid)` stream (the output of
//! [`crate::sort::external_sort`]): leaves are packed and appended first,
//! then each internal level is appended above the previous one, root
//! last. Every page is written exactly once, in order — the construction
//! is a pure log write. Lookups descend root → leaf in `height` page
//! reads; duplicate keys spill across leaves and are collected by a
//! forward leaf walk (leaves are physically consecutive).
//!
//! ## Page layout (raw pages in one log)
//!
//! ```text
//! leaf:     [0u8][count u16] count × ([klen u16][key][rowid u32])
//! internal: [1u8][count u16] count × ([klen u16][key][child_page u32])
//! ```

use pds_flash::{Flash, Log};

use crate::error::DbError;
use crate::sort::SortEntry;
use crate::table::RowId;

const HEADER: usize = 3;

/// A sealed, read-only tree index.
pub struct TreeIndex {
    log: Log,
    root_page: u32,
    num_leaves: u32,
    height: u32,
    num_entries: u64,
}

struct PagePacker {
    page: Vec<u8>,
    count: u16,
    off: usize,
    kind: u8,
}

impl PagePacker {
    fn new(page_size: usize, kind: u8) -> Self {
        let mut page = vec![0xFFu8; page_size];
        page[0] = kind;
        PagePacker {
            page,
            count: 0,
            off: HEADER,
            kind,
        }
    }

    fn fits(&self, key: &[u8]) -> bool {
        self.off + 2 + key.len() + 4 <= self.page.len()
    }

    fn push(&mut self, key: &[u8], val: u32) {
        self.page[self.off..self.off + 2].copy_from_slice(&(key.len() as u16).to_le_bytes());
        self.off += 2;
        self.page[self.off..self.off + key.len()].copy_from_slice(key);
        self.off += key.len();
        self.page[self.off..self.off + 4].copy_from_slice(&val.to_le_bytes());
        self.off += 4;
        self.count += 1;
        self.page[1..3].copy_from_slice(&self.count.to_le_bytes());
    }

    fn is_empty(&self) -> bool {
        self.count == 0
    }

    fn reset(&mut self) -> Vec<u8> {
        let page_size = self.page.len();
        let done = std::mem::replace(&mut self.page, vec![0xFFu8; page_size]);
        self.page[0] = self.kind;
        self.count = 0;
        self.off = HEADER;
        done
    }
}

/// Decode a tree page. `None` when the entry array runs past the page end
/// (corrupt header / truncated key) — callers surface [`DbError::Corrupt`]
/// so a damaged page fails the query instead of panicking the token.
#[allow(clippy::type_complexity)] // (kind, entries) pair mirrors the page layout
fn decode_entries(page: &[u8]) -> Option<(u8, Vec<(Vec<u8>, u32)>)> {
    let kind = *page.first()?;
    let count = u16::from_le_bytes([*page.get(1)?, *page.get(2)?]) as usize;
    let mut off = HEADER;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let klen = u16::from_le_bytes([*page.get(off)?, *page.get(off + 1)?]) as usize;
        off += 2;
        let key = page.get(off..off + klen)?.to_vec();
        off += klen;
        let val = u32::from_le_bytes(page.get(off..off + 4)?.try_into().ok()?);
        off += 4;
        entries.push((key, val));
    }
    Some((kind, entries))
}

impl TreeIndex {
    /// Build a tree from a sorted `(key, rowid)` stream.
    ///
    /// The per-level `(first_key, page)` separators are carried through
    /// *level logs* — plain flash logs reclaimed as soon as the level
    /// above is built — so construction RAM stays at two pages no matter
    /// the index size.
    pub fn build(
        flash: &Flash,
        entries: impl Iterator<Item = SortEntry>,
    ) -> Result<TreeIndex, DbError> {
        let page_size = flash.geometry().page_size;
        let mut log = flash.new_log();
        let mut num_entries = 0u64;

        // Level 0: leaves. The separators of the level above go to a
        // level log.
        let mut level_log = flash.new_log();
        let mut packer = PagePacker::new(page_size, 0);
        let mut first_key: Option<Vec<u8>> = None;
        for (key, rowid) in entries {
            num_entries += 1;
            if !packer.fits(&key) {
                let page_idx = log.append_raw_page(&packer.reset())?;
                let sep = first_key
                    .take()
                    .ok_or(DbError::Corrupt("tree build: page without a first key"))?;
                push_separator(&mut level_log, sep, page_idx)?;
            }
            if first_key.is_none() {
                first_key = Some(key.clone());
            }
            packer.push(&key, rowid);
        }
        if !packer.is_empty() {
            let page_idx = log.append_raw_page(&packer.reset())?;
            let sep = first_key
                .take()
                .ok_or(DbError::Corrupt("tree build: page without a first key"))?;
            push_separator(&mut level_log, sep, page_idx)?;
        }
        let num_leaves = log.num_pages();
        if num_leaves == 0 {
            return Ok(TreeIndex {
                log: log.seal()?,
                root_page: u32::MAX,
                num_leaves: 0,
                height: 0,
                num_entries: 0,
            });
        }

        // Upper levels: consume the previous level log, emit the next.
        let mut height = 1u32;
        let mut level = level_log.seal()?;
        while level.num_records() > 1 {
            height += 1;
            let mut next_level = flash.new_log();
            let mut packer = PagePacker::new(page_size, 1);
            let mut first_key: Option<Vec<u8>> = None;
            for rec in level.reader() {
                let (key, child) =
                    crate::sort::decode_entry(&rec?).ok_or(DbError::Corrupt("level log"))?;
                if !packer.fits(&key) {
                    let page_idx = log.append_raw_page(&packer.reset())?;
                    let sep = first_key
                        .take()
                        .ok_or(DbError::Corrupt("tree build: page without a first key"))?;
                    push_separator(&mut next_level, sep, page_idx)?;
                }
                if first_key.is_none() {
                    first_key = Some(key.clone());
                }
                packer.push(&key, child);
            }
            if !packer.is_empty() {
                let page_idx = log.append_raw_page(&packer.reset())?;
                let sep = first_key
                    .take()
                    .ok_or(DbError::Corrupt("tree build: page without a first key"))?;
                push_separator(&mut next_level, sep, page_idx)?;
            }
            level.reclaim();
            level = next_level.seal()?;
        }
        // The single record of the last level points at the root page.
        let root_page = {
            let rec = level
                .reader()
                .next()
                .ok_or(DbError::Corrupt("tree level log ended without a root"))??;
            let (_, page) = crate::sort::decode_entry(&rec).ok_or(DbError::Corrupt("level log"))?;
            page
        };
        level.reclaim();
        Ok(TreeIndex {
            log: log.seal()?,
            root_page,
            num_leaves,
            height,
            num_entries,
        })
    }

    /// Number of indexed entries.
    pub fn num_entries(&self) -> u64 {
        self.num_entries
    }

    /// Tree height in pages (= page reads per point lookup).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total pages of the index.
    pub fn num_pages(&self) -> u32 {
        self.log.num_pages()
    }

    /// Erase blocks of the index log — what crash recovery frees before
    /// rebuilding from the base table (the tree is derived state).
    pub fn blocks(&self) -> Vec<pds_flash::BlockId> {
        self.log.blocks().to_vec()
    }

    /// All rowids with key exactly `key`, ascending.
    pub fn lookup(&self, key: &[u8]) -> Result<Vec<RowId>, DbError> {
        if self.num_leaves == 0 {
            return Ok(Vec::new());
        }
        let page_size = self.log.flash().geometry().page_size;
        let mut buf = vec![0u8; page_size];
        let mut page = self.root_page;
        // Descend internals, keeping the decoded leaf for the walk below
        // (so the landing leaf is read exactly once).
        let mut leaf_entries;
        loop {
            self.log.read_raw_page(page, &mut buf)?;
            let (kind, entries) = decode_entries(&buf).ok_or(DbError::Corrupt("tree page"))?;
            if kind == 0 {
                leaf_entries = entries;
                break;
            }
            // Descend toward the *first* occurrence of the key: the
            // rightmost child whose separator is strictly below it.
            // (With duplicated keys, several consecutive separators can
            // equal `key`; the first occurrence lives in the child just
            // before them.)
            let idx = entries
                .iter()
                .rposition(|(k, _)| k.as_slice() < key)
                .unwrap_or(0);
            page = entries[idx].1;
        }
        // `page` is at or before the first candidate leaf; duplicates may
        // span several physically consecutive leaves. Walk forward until
        // a key greater than the probe appears (global sort order bounds
        // the walk to the duplicate span plus one page).
        let mut hits = Vec::new();
        let mut leaf = page;
        loop {
            let mut passed_key = false;
            for (k, rowid) in &leaf_entries {
                match k.as_slice().cmp(key) {
                    std::cmp::Ordering::Equal => hits.push(*rowid),
                    std::cmp::Ordering::Greater => {
                        passed_key = true;
                        break;
                    }
                    std::cmp::Ordering::Less => {}
                }
            }
            leaf += 1;
            if passed_key || leaf >= self.num_leaves {
                break;
            }
            self.log.read_raw_page(leaf, &mut buf)?;
            let (kind, entries) = decode_entries(&buf).ok_or(DbError::Corrupt("tree page"))?;
            debug_assert_eq!(kind, 0);
            leaf_entries = entries;
        }
        Ok(hits)
    }

    /// All `(key, rowid)` entries with `lo ≤ key ≤ hi`, in key order —
    /// a range scan: one descent to the first candidate leaf, then a
    /// forward walk over the physically consecutive leaves.
    pub fn lookup_range(&self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Vec<u8>, RowId)>, DbError> {
        if self.num_leaves == 0 || lo > hi {
            return Ok(Vec::new());
        }
        let page_size = self.log.flash().geometry().page_size;
        let mut buf = vec![0u8; page_size];
        let mut page = self.root_page;
        let mut leaf_entries;
        loop {
            self.log.read_raw_page(page, &mut buf)?;
            let (kind, entries) = decode_entries(&buf).ok_or(DbError::Corrupt("tree page"))?;
            if kind == 0 {
                leaf_entries = entries;
                break;
            }
            let idx = entries
                .iter()
                .rposition(|(k, _)| k.as_slice() < lo)
                .unwrap_or(0);
            page = entries[idx].1;
        }
        let mut out = Vec::new();
        let mut leaf = page;
        loop {
            let mut passed = false;
            for (k, rowid) in &leaf_entries {
                if k.as_slice() > hi {
                    passed = true;
                    break;
                }
                if k.as_slice() >= lo {
                    out.push((k.clone(), *rowid));
                }
            }
            leaf += 1;
            if passed || leaf >= self.num_leaves {
                break;
            }
            self.log.read_raw_page(leaf, &mut buf)?;
            let (kind, entries) = decode_entries(&buf).ok_or(DbError::Corrupt("tree page"))?;
            debug_assert_eq!(kind, 0);
            leaf_entries = entries;
        }
        Ok(out)
    }

    /// Page reads a point lookup costs (height + duplicate spill).
    pub fn lookup_cost(&self, key: &[u8]) -> Result<u64, DbError> {
        let before = self.log.flash().stats();
        self.lookup(key)?;
        Ok((self.log.flash().stats() - before).page_reads)
    }

    /// Reclaim the index blocks.
    pub fn reclaim(self) {
        self.log.reclaim();
    }
}

fn push_separator(
    level_log: &mut pds_flash::LogWriter,
    key: Vec<u8>,
    page: u32,
) -> Result<(), DbError> {
    let mut rec = Vec::with_capacity(2 + key.len() + 4);
    rec.extend_from_slice(&(key.len() as u16).to_le_bytes());
    rec.extend_from_slice(&key);
    rec.extend_from_slice(&page.to_le_bytes());
    level_log.append(&rec)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flash() -> Flash {
        Flash::small(512)
    }

    fn entries(n: u32, dup_every: u32) -> Vec<SortEntry> {
        // keys 0..n/dup_every, each repeated dup_every times.
        let mut v: Vec<SortEntry> = (0..n)
            .map(|i| ((i / dup_every).to_be_bytes().to_vec(), i))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn point_lookups_find_exact_matches() {
        let f = flash();
        let tree = TreeIndex::build(&f, entries(5000, 1).into_iter()).unwrap();
        assert_eq!(tree.num_entries(), 5000);
        for probe in [0u32, 1, 777, 4999] {
            assert_eq!(
                tree.lookup(&probe.to_be_bytes()).unwrap(),
                vec![probe],
                "probe {probe}"
            );
        }
        assert!(tree.lookup(&9999u32.to_be_bytes()).unwrap().is_empty());
        assert!(tree.lookup(b"").unwrap().is_empty());
    }

    #[test]
    fn duplicates_collected_across_leaves() {
        let f = flash();
        // 100 keys × 100 duplicates: each key spans several leaves.
        let tree = TreeIndex::build(&f, entries(10_000, 100).into_iter()).unwrap();
        for probe in [0u32, 37, 99] {
            let hits = tree.lookup(&probe.to_be_bytes()).unwrap();
            let expected: Vec<RowId> = (probe * 100..(probe + 1) * 100).collect();
            assert_eq!(hits, expected, "probe {probe}");
        }
    }

    #[test]
    fn lookup_cost_is_logarithmic() {
        let f = Flash::new(pds_flash::FlashGeometry::new(512, 16, 4096));
        let tree = TreeIndex::build(&f, entries(50_000, 1).into_iter()).unwrap();
        assert!(tree.height() >= 2, "50k keys need internal levels");
        let cost = tree.lookup_cost(&25_000u32.to_be_bytes()).unwrap();
        assert!(
            cost <= tree.height() as u64 + 1,
            "cost {cost} vs height {}",
            tree.height()
        );
        assert!(cost < 10, "a tree lookup must be a handful of IOs");
    }

    #[test]
    fn empty_tree() {
        let f = flash();
        let tree = TreeIndex::build(&f, std::iter::empty()).unwrap();
        assert_eq!(tree.num_entries(), 0);
        assert!(tree.lookup(b"x").unwrap().is_empty());
    }

    #[test]
    fn single_leaf_tree() {
        let f = flash();
        let tree = TreeIndex::build(&f, entries(10, 1).into_iter()).unwrap();
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.lookup(&3u32.to_be_bytes()).unwrap(), vec![3]);
    }

    #[test]
    fn construction_is_sequential_and_reclaims_level_logs() {
        let f = flash();
        let before = f.free_blocks();
        let tree = TreeIndex::build(&f, entries(20_000, 4).into_iter()).unwrap();
        let tree_blocks = (tree.num_pages() as usize).div_ceil(f.geometry().pages_per_block);
        assert_eq!(
            f.free_blocks(),
            before - tree_blocks,
            "level logs must be fully reclaimed"
        );
        tree.reclaim();
        assert_eq!(f.free_blocks(), before);
    }

    #[test]
    fn range_scans_match_filtering() {
        let f = flash();
        let tree = TreeIndex::build(&f, entries(5000, 5).into_iter()).unwrap();
        for (lo, hi) in [(0u32, 10u32), (100, 200), (999, 999), (950, 2000)] {
            let got = tree
                .lookup_range(&lo.to_be_bytes(), &hi.to_be_bytes())
                .unwrap();
            let expected: Vec<(Vec<u8>, RowId)> = entries(5000, 5)
                .into_iter()
                .filter(|(k, _)| {
                    k.as_slice() >= lo.to_be_bytes().as_slice()
                        && k.as_slice() <= hi.to_be_bytes().as_slice()
                })
                .collect();
            assert_eq!(got, expected, "[{lo},{hi}]");
        }
        // Inverted and out-of-domain ranges are empty.
        assert!(tree
            .lookup_range(&9u32.to_be_bytes(), &3u32.to_be_bytes())
            .unwrap()
            .is_empty());
        assert!(tree
            .lookup_range(&90_000u32.to_be_bytes(), &99_000u32.to_be_bytes())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn range_scan_cost_is_height_plus_touched_leaves() {
        let f = Flash::new(pds_flash::FlashGeometry::new(512, 16, 4096));
        let tree = TreeIndex::build(&f, entries(50_000, 1).into_iter()).unwrap();
        f.reset_stats();
        let got = tree
            .lookup_range(&10_000u32.to_be_bytes(), &10_200u32.to_be_bytes())
            .unwrap();
        assert_eq!(got.len(), 201);
        let reads = f.stats().page_reads;
        // height-1 internals + ~201/keys_per_leaf leaves + 1 overshoot.
        assert!(reads < 15, "range scan cost {reads}");
    }

    #[test]
    fn string_keys_work() {
        let f = flash();
        let mut input: Vec<SortEntry> = ["lyon", "paris", "lyon", "nice", "lyon"]
            .iter()
            .enumerate()
            .map(|(i, s)| (s.as_bytes().to_vec(), i as u32))
            .collect();
        input.sort();
        let tree = TreeIndex::build(&f, input.into_iter()).unwrap();
        assert_eq!(tree.lookup(b"lyon").unwrap(), vec![0, 2, 4]);
        assert_eq!(tree.lookup(b"paris").unwrap(), vec![1]);
        assert!(tree.lookup(b"marseille").unwrap().is_empty());
    }
}

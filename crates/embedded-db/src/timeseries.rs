//! Embedded time-series store — the tutorial's first "remaining
//! challenge".
//!
//! Part II closes with: "Extend the principles to other data models:
//! XML, **time series**, spatial-temporal data, noSQL & key-value
//! stores." This module applies the exact same framework to time series:
//!
//! 1. samples `(timestamp, value)` append to a sequential **data log**
//!    (timestamps arrive non-decreasing — sensors and life-logging
//!    produce them in order);
//! 2. a **summary log** holds one record per data page: its time range
//!    and pre-aggregates (count / sum / min / max) — the Bloom-filter
//!    idea transposed to ranges;
//! 3. range aggregates are answered by a summary scan that reads *data*
//!    pages only at the two range boundaries — `|summary| I/O + O(1)`
//!    instead of scanning the series.

use pds_flash::{Flash, FlashError, LogWriter};

use crate::error::DbError;

/// One sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Seconds (or any monotone unit) since the device epoch.
    pub ts: u64,
    /// Measured value.
    pub value: i64,
}

const SAMPLE_LEN: usize = 16;
const PAGE_HEADER: usize = 2;

/// Aggregate of a set of samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aggregate {
    /// Number of samples.
    pub count: u64,
    /// Sum of values.
    pub sum: i64,
    /// Minimum value (i64::MAX when empty).
    pub min: i64,
    /// Maximum value (i64::MIN when empty).
    pub max: i64,
}

impl Aggregate {
    /// The empty aggregate (identity of [`merge`](Self::merge)).
    pub fn empty() -> Self {
        Aggregate {
            count: 0,
            sum: 0,
            min: i64::MAX,
            max: i64::MIN,
        }
    }

    fn add(&mut self, v: i64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Combine two aggregates.
    pub fn merge(&self, other: &Aggregate) -> Aggregate {
        Aggregate {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Mean value, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

/// Per-page summary record: `ts_min ‖ ts_max ‖ count ‖ sum ‖ min ‖ max`.
#[derive(Debug, Clone, Copy)]
struct PageSummary {
    ts_min: u64,
    ts_max: u64,
    agg: Aggregate,
}

impl PageSummary {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48);
        out.extend_from_slice(&self.ts_min.to_le_bytes());
        out.extend_from_slice(&self.ts_max.to_le_bytes());
        out.extend_from_slice(&self.agg.count.to_le_bytes());
        out.extend_from_slice(&self.agg.sum.to_le_bytes());
        out.extend_from_slice(&self.agg.min.to_le_bytes());
        out.extend_from_slice(&self.agg.max.to_le_bytes());
        out
    }

    fn decode(rec: &[u8]) -> Option<PageSummary> {
        if rec.len() != 48 {
            return None;
        }
        Some(PageSummary {
            ts_min: u64::from_le_bytes(rec[0..8].try_into().ok()?),
            ts_max: u64::from_le_bytes(rec[8..16].try_into().ok()?),
            agg: Aggregate {
                count: u64::from_le_bytes(rec[16..24].try_into().ok()?),
                sum: i64::from_le_bytes(rec[24..32].try_into().ok()?),
                min: i64::from_le_bytes(rec[32..40].try_into().ok()?),
                max: i64::from_le_bytes(rec[40..48].try_into().ok()?),
            },
        })
    }
}

/// A log-structured time series with pre-aggregated page summaries.
pub struct TimeSeries {
    flash: Flash,
    /// Raw data pages of packed samples.
    data: LogWriter,
    /// One summary record per data page.
    summaries: LogWriter,
    /// Samples of the page being filled (RAM, one page worth).
    pending: Vec<Sample>,
    samples_per_page: usize,
    last_ts: Option<u64>,
    total: u64,
}

impl TimeSeries {
    /// An empty series on `flash`.
    pub fn new(flash: &Flash) -> Self {
        let samples_per_page = (flash.geometry().page_size - PAGE_HEADER) / SAMPLE_LEN;
        TimeSeries {
            flash: flash.clone(),
            data: flash.new_log(),
            summaries: flash.new_log(),
            pending: Vec::new(),
            samples_per_page,
            last_ts: None,
            total: 0,
        }
    }

    /// Total samples appended.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True when no sample was appended.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Data pages on flash.
    pub fn num_data_pages(&self) -> u32 {
        self.data.num_pages()
    }

    /// Append one sample. Timestamps must be non-decreasing (out-of-order
    /// samples are a protocol error on an append-only sensor store) — an
    /// older sample is rejected with [`DbError::OutOfOrderTimestamp`].
    pub fn append(&mut self, ts: u64, value: i64) -> Result<(), DbError> {
        if let Some(last) = self.last_ts {
            if ts < last {
                return Err(DbError::OutOfOrderTimestamp { last, got: ts });
            }
        }
        self.last_ts = Some(ts);
        self.pending.push(Sample { ts, value });
        self.total += 1;
        if self.pending.len() == self.samples_per_page {
            self.flush_page()?;
        }
        Ok(())
    }

    fn flush_page(&mut self) -> Result<(), FlashError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let page_size = self.flash.geometry().page_size;
        let mut page = vec![0xFFu8; page_size];
        page[0..2].copy_from_slice(&(self.pending.len() as u16).to_le_bytes());
        let mut agg = Aggregate::empty();
        for (i, s) in self.pending.iter().enumerate() {
            let off = PAGE_HEADER + i * SAMPLE_LEN;
            page[off..off + 8].copy_from_slice(&s.ts.to_le_bytes());
            page[off + 8..off + 16].copy_from_slice(&s.value.to_le_bytes());
            agg.add(s.value);
        }
        let summary = PageSummary {
            ts_min: self.pending[0].ts,
            ts_max: self.pending[self.pending.len() - 1].ts,
            agg,
        };
        self.data.append_raw_page(&page)?;
        self.summaries.append(&summary.encode())?;
        self.pending.clear();
        Ok(())
    }

    /// Force pending samples to flash.
    pub fn flush(&mut self) -> Result<(), FlashError> {
        self.flush_page()?;
        self.summaries.flush()
    }

    /// Decode a data page; `None` when the sample array runs past the page
    /// end (corrupt header) — callers surface [`FlashError::CorruptPage`].
    fn decode_data_page(buf: &[u8]) -> Option<Vec<Sample>> {
        let count = u16::from_le_bytes([*buf.first()?, *buf.get(1)?]) as usize;
        (0..count)
            .map(|i| {
                let off = PAGE_HEADER + i * SAMPLE_LEN;
                let word = |a: usize| buf.get(a..a + 8)?.try_into().ok();
                Some(Sample {
                    ts: u64::from_le_bytes(word(off)?),
                    value: i64::from_le_bytes(word(off + 8)?),
                })
            })
            .collect()
    }

    /// Aggregate over `[from, to]` (inclusive): summary scan + boundary
    /// data-page probes. RAM: one page buffer.
    pub fn range_aggregate(&self, from: u64, to: u64) -> Result<Aggregate, FlashError> {
        let mut agg = Aggregate::empty();
        let page_size = self.flash.geometry().page_size;
        let mut buf = vec![0u8; page_size];
        // Walk summaries (flushed pages + buffered tail records).
        let mut page_idx: u32 = 0;
        let mut handle = |rec: &[u8], agg: &mut Aggregate, idx: u32| -> Result<(), FlashError> {
            let s = PageSummary::decode(rec)
                .ok_or(FlashError::CorruptPage(pds_flash::PageAddr(idx)))?;
            if s.ts_max < from || s.ts_min > to {
                return Ok(()); // disjoint: skip without touching data
            }
            if s.ts_min >= from && s.ts_max <= to {
                *agg = agg.merge(&s.agg); // fully covered: use the summary
                return Ok(());
            }
            // Boundary page: probe the data page.
            let addr = self.data.page_addr(idx)?;
            self.flash.read_page(addr, &mut buf)?;
            let samples = Self::decode_data_page(&buf).ok_or(FlashError::CorruptPage(addr))?;
            for sample in samples {
                if sample.ts >= from && sample.ts <= to {
                    agg.add(sample.value);
                }
            }
            Ok(())
        };
        for p in 0..self.summaries.num_pages() {
            for rec in self.summaries.read_page_records(p)? {
                handle(&rec, &mut agg, page_idx)?;
                page_idx += 1;
            }
        }
        for rec in self.summaries.buffered_records() {
            handle(&rec, &mut agg, page_idx)?;
            page_idx += 1;
        }
        // The RAM-pending samples.
        for s in &self.pending {
            if s.ts >= from && s.ts <= to {
                agg.add(s.value);
            }
        }
        Ok(agg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_obs::rng::{Rng, SeedableRng, StdRng};

    fn series_with(n: u64) -> (Flash, TimeSeries) {
        let f = Flash::small(512);
        let mut ts = TimeSeries::new(&f);
        for i in 0..n {
            // value pattern: alternating sign ramp
            let v = if i % 2 == 0 { i as i64 } else { -(i as i64) };
            ts.append(i * 10, v).unwrap();
        }
        (f, ts)
    }

    fn oracle(n: u64, from: u64, to: u64) -> Aggregate {
        let mut agg = Aggregate::empty();
        for i in 0..n {
            let t = i * 10;
            if t >= from && t <= to {
                let v = if i % 2 == 0 { i as i64 } else { -(i as i64) };
                agg.add(v);
            }
        }
        agg
    }

    #[test]
    fn range_aggregates_match_oracle() {
        let (_f, ts) = series_with(2000);
        for (from, to) in [
            (0, 19990),
            (5000, 6000),
            (123, 456),
            (19990, 19990),
            (30000, 40000),
        ] {
            assert_eq!(
                ts.range_aggregate(from, to).unwrap(),
                oracle(2000, from, to),
                "[{from},{to}]"
            );
        }
    }

    #[test]
    fn covered_pages_are_answered_from_summaries_alone() {
        let (f, mut ts) = series_with(5000);
        ts.flush().unwrap();
        f.reset_stats();
        ts.range_aggregate(10_000, 40_000).unwrap();
        let reads = f.stats().page_reads;
        // Summary pages + at most 2 boundary data pages.
        let summary_pages = ts.summaries.num_pages() as u64;
        assert!(
            reads <= summary_pages + 3,
            "reads {reads} vs summaries {summary_pages}"
        );
        assert!(
            reads < ts.num_data_pages() as u64 / 4,
            "must not scan the data log"
        );
    }

    #[test]
    fn pending_ram_samples_are_visible() {
        let f = Flash::small(64);
        let mut ts = TimeSeries::new(&f);
        ts.append(100, 7).unwrap();
        ts.append(110, 9).unwrap();
        let agg = ts.range_aggregate(0, 200).unwrap();
        assert_eq!(agg.count, 2);
        assert_eq!(agg.sum, 16);
        assert_eq!(ts.num_data_pages(), 0, "still buffered");
    }

    #[test]
    fn out_of_order_timestamps_rejected() {
        let f = Flash::small(16);
        let mut ts = TimeSeries::new(&f);
        ts.append(100, 1).unwrap();
        match ts.append(50, 2) {
            Err(DbError::OutOfOrderTimestamp { last: 100, got: 50 }) => {}
            other => panic!("expected out-of-order error, got {other:?}"),
        }
        // The rejected sample must not have advanced any state.
        ts.append(100, 3).unwrap();
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn empty_series_and_empty_range() {
        let (_f, ts) = series_with(100);
        let empty = ts.range_aggregate(999_999, 1_000_000).unwrap();
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean(), None);
        let fresh = TimeSeries::new(&Flash::small(8));
        assert_eq!(fresh.range_aggregate(0, u64::MAX).unwrap().count, 0);
    }

    #[test]
    fn prop_aggregate_equals_oracle() {
        for case in 0..32u64 {
            let mut rng = StdRng::seed_from_u64(0x7155 + case);
            let n = rng.gen_range(1u64..800);
            let (a, b) = (rng.gen_range(0u64..9000), rng.gen_range(0u64..9000));
            let (from, to) = (a.min(b), a.max(b));
            let (_f, ts) = series_with(n);
            assert_eq!(
                ts.range_aggregate(from, to).unwrap(),
                oracle(n, from, to),
                "case {case}"
            );
        }
    }
}

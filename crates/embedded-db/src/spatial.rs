//! Embedded spatial-temporal store — third item of the tutorial's
//! extension challenge ("XML, time series, **spatial-temporal data**,
//! noSQL & key-value stores").
//!
//! The motivating device class is the tutorial's GPS-enabled personal
//! tokens (transport passes, vehicle trackers): points `(x, y, ts)`
//! arrive in time order and append to a sequential **data log**; a
//! **summary log** keeps, per data page, the *minimum bounding rectangle*
//! (MBR) and time range of its points — the R-tree idea flattened into
//! the tutorial's log+summary shape. Spatio-temporal window queries scan
//! the compact summaries and probe only pages whose MBR intersects the
//! window.
//!
//! Movement traces have strong spatial locality in time (consecutive
//! points are near each other), so page MBRs are tight and the summary
//! scan prunes aggressively — the property the tests assert.

use pds_flash::{Flash, FlashError, LogWriter};

use crate::error::DbError;

/// One spatio-temporal point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Point {
    /// X coordinate (e.g. scaled longitude).
    pub x: i32,
    /// Y coordinate (e.g. scaled latitude).
    pub y: i32,
    /// Timestamp (monotone).
    pub ts: u64,
}

/// An axis-aligned query window with a time range.
#[derive(Debug, Clone, Copy)]
pub struct Window {
    /// Inclusive x range.
    pub x: (i32, i32),
    /// Inclusive y range.
    pub y: (i32, i32),
    /// Inclusive time range.
    pub t: (u64, u64),
}

impl Window {
    /// Does the window contain the point?
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.x.0
            && p.x <= self.x.1
            && p.y >= self.y.0
            && p.y <= self.y.1
            && p.ts >= self.t.0
            && p.ts <= self.t.1
    }
}

const POINT_LEN: usize = 16;
const PAGE_HEADER: usize = 2;

/// Per-page summary: MBR + time range.
#[derive(Debug, Clone, Copy)]
struct Mbr {
    x: (i32, i32),
    y: (i32, i32),
    t: (u64, u64),
}

impl Mbr {
    fn of(points: &[Point]) -> Mbr {
        let mut m = Mbr {
            x: (i32::MAX, i32::MIN),
            y: (i32::MAX, i32::MIN),
            t: (u64::MAX, u64::MIN),
        };
        for p in points {
            m.x.0 = m.x.0.min(p.x);
            m.x.1 = m.x.1.max(p.x);
            m.y.0 = m.y.0.min(p.y);
            m.y.1 = m.y.1.max(p.y);
            m.t.0 = m.t.0.min(p.ts);
            m.t.1 = m.t.1.max(p.ts);
        }
        m
    }

    fn intersects(&self, w: &Window) -> bool {
        self.x.0 <= w.x.1
            && self.x.1 >= w.x.0
            && self.y.0 <= w.y.1
            && self.y.1 >= w.y.0
            && self.t.0 <= w.t.1
            && self.t.1 >= w.t.0
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        for v in [self.x.0, self.x.1, self.y.0, self.y.1] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.t.0.to_le_bytes());
        out.extend_from_slice(&self.t.1.to_le_bytes());
        out
    }

    fn decode(rec: &[u8]) -> Option<Mbr> {
        if rec.len() != 32 {
            return None;
        }
        let i = |a: usize| -> Option<i32> {
            Some(i32::from_le_bytes(rec.get(a..a + 4)?.try_into().ok()?))
        };
        let t = |a: usize| -> Option<u64> {
            Some(u64::from_le_bytes(rec.get(a..a + 8)?.try_into().ok()?))
        };
        Some(Mbr {
            x: (i(0)?, i(4)?),
            y: (i(8)?, i(12)?),
            t: (t(16)?, t(24)?),
        })
    }
}

/// A log-structured spatio-temporal trace with MBR page summaries.
pub struct SpatialTrace {
    flash: Flash,
    data: LogWriter,
    summaries: LogWriter,
    pending: Vec<Point>,
    points_per_page: usize,
    last_ts: Option<u64>,
    total: u64,
}

impl SpatialTrace {
    /// An empty trace on `flash`.
    pub fn new(flash: &Flash) -> Self {
        let points_per_page = (flash.geometry().page_size - PAGE_HEADER) / POINT_LEN;
        SpatialTrace {
            flash: flash.clone(),
            data: flash.new_log(),
            summaries: flash.new_log(),
            pending: Vec::new(),
            points_per_page,
            last_ts: None,
            total: 0,
        }
    }

    /// Points recorded.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True when no point was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Data pages programmed.
    pub fn num_data_pages(&self) -> u32 {
        self.data.num_pages()
    }

    /// Record one point. Timestamps must be non-decreasing; an older point
    /// is rejected with [`DbError::OutOfOrderTimestamp`].
    pub fn record(&mut self, x: i32, y: i32, ts: u64) -> Result<(), DbError> {
        if let Some(last) = self.last_ts {
            if ts < last {
                return Err(DbError::OutOfOrderTimestamp { last, got: ts });
            }
        }
        self.last_ts = Some(ts);
        self.pending.push(Point { x, y, ts });
        self.total += 1;
        if self.pending.len() == self.points_per_page {
            self.flush_page()?;
        }
        Ok(())
    }

    fn flush_page(&mut self) -> Result<(), FlashError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let page_size = self.flash.geometry().page_size;
        let mut page = vec![0xFFu8; page_size];
        page[0..2].copy_from_slice(&(self.pending.len() as u16).to_le_bytes());
        for (i, p) in self.pending.iter().enumerate() {
            let off = PAGE_HEADER + i * POINT_LEN;
            page[off..off + 4].copy_from_slice(&p.x.to_le_bytes());
            page[off + 4..off + 8].copy_from_slice(&p.y.to_le_bytes());
            page[off + 8..off + 16].copy_from_slice(&p.ts.to_le_bytes());
        }
        self.data.append_raw_page(&page)?;
        self.summaries.append(&Mbr::of(&self.pending).encode())?;
        self.pending.clear();
        Ok(())
    }

    /// Force pending points to flash.
    pub fn flush(&mut self) -> Result<(), FlashError> {
        self.flush_page()?;
        self.summaries.flush()
    }

    /// Decode a data page; `None` when the point array runs past the page
    /// end (corrupt header) — callers surface [`FlashError::CorruptPage`].
    fn decode_data_page(buf: &[u8]) -> Option<Vec<Point>> {
        let count = u16::from_le_bytes([*buf.first()?, *buf.get(1)?]) as usize;
        (0..count)
            .map(|i| {
                let off = PAGE_HEADER + i * POINT_LEN;
                let word = |a: usize| buf.get(a..a + 4)?.try_into().ok();
                Some(Point {
                    x: i32::from_le_bytes(word(off)?),
                    y: i32::from_le_bytes(word(off + 4)?),
                    ts: u64::from_le_bytes(buf.get(off + 8..off + 16)?.try_into().ok()?),
                })
            })
            .collect()
    }

    /// All points inside the window, in time order. RAM: one page buffer;
    /// I/O: summary scan + only the intersecting data pages.
    pub fn window_query(&self, w: &Window) -> Result<Vec<Point>, FlashError> {
        let mut hits = Vec::new();
        let page_size = self.flash.geometry().page_size;
        let mut buf = vec![0u8; page_size];
        let mut page_idx: u32 = 0;
        let mut handle = |rec: &[u8], hits: &mut Vec<Point>, idx: u32| -> Result<(), FlashError> {
            let mbr = Mbr::decode(rec).ok_or(FlashError::CorruptPage(pds_flash::PageAddr(idx)))?;
            if !mbr.intersects(w) {
                return Ok(());
            }
            let addr = self.data.page_addr(idx)?;
            self.flash.read_page(addr, &mut buf)?;
            let points = Self::decode_data_page(&buf).ok_or(FlashError::CorruptPage(addr))?;
            hits.extend(points.into_iter().filter(|p| w.contains(p)));
            Ok(())
        };
        for p in 0..self.summaries.num_pages() {
            for rec in self.summaries.read_page_records(p)? {
                handle(&rec, &mut hits, page_idx)?;
                page_idx += 1;
            }
        }
        for rec in self.summaries.buffered_records() {
            handle(&rec, &mut hits, page_idx)?;
            page_idx += 1;
        }
        hits.extend(self.pending.iter().copied().filter(|p| w.contains(p)));
        Ok(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_obs::rng::{Rng, SeedableRng, StdRng};

    /// A commuter-like trace: loops between home (0,0) and work (1000,800)
    /// with small jitter — strong spatial locality in time.
    fn commuter_trace(days: u64) -> (Flash, SpatialTrace, Vec<Point>) {
        let f = Flash::small(1024);
        let mut trace = SpatialTrace::new(&f);
        let mut all = Vec::new();
        let mut ts = 0u64;
        for day in 0..days {
            for step in 0..100i32 {
                // Morning: home → work; afternoon: work → home.
                let frac = if step < 50 { step } else { 100 - step };
                let x = frac * 20 + (day as i32 % 3);
                let y = frac * 16 + (day as i32 % 5);
                trace.record(x, y, ts).unwrap();
                all.push(Point { x, y, ts });
                ts += 60;
            }
        }
        (f, trace, all)
    }

    fn oracle(all: &[Point], w: &Window) -> Vec<Point> {
        all.iter().copied().filter(|p| w.contains(p)).collect()
    }

    #[test]
    fn window_queries_match_oracle() {
        let (_f, trace, all) = commuter_trace(20);
        let windows = [
            Window {
                x: (0, 100),
                y: (0, 100),
                t: (0, u64::MAX),
            }, // near home
            Window {
                x: (900, 1100),
                y: (700, 900),
                t: (0, u64::MAX),
            }, // near work
            Window {
                x: (0, 2000),
                y: (0, 2000),
                t: (6000, 12000),
            }, // one time slice
            Window {
                x: (5000, 6000),
                y: (0, 10),
                t: (0, 100),
            }, // empty
        ];
        for w in &windows {
            assert_eq!(trace.window_query(w).unwrap(), oracle(&all, w), "{w:?}");
        }
    }

    #[test]
    fn summary_scan_prunes_most_data_pages() {
        let (f, mut trace, _all) = commuter_trace(60);
        trace.flush().unwrap();
        f.reset_stats();
        // A tight window around home: only the pages covering the
        // morning/evening ends of each day intersect.
        let w = Window {
            x: (0, 60),
            y: (0, 60),
            t: (0, u64::MAX),
        };
        trace.window_query(&w).unwrap();
        let reads = f.stats().page_reads;
        assert!(
            reads < trace.num_data_pages() as u64,
            "{reads} reads vs {} data pages — MBRs must prune",
            trace.num_data_pages()
        );
    }

    #[test]
    fn pending_points_visible() {
        let f = Flash::small(16);
        let mut t = SpatialTrace::new(&f);
        t.record(5, 5, 100).unwrap();
        let w = Window {
            x: (0, 10),
            y: (0, 10),
            t: (0, 200),
        };
        assert_eq!(t.window_query(&w).unwrap().len(), 1);
        assert_eq!(t.num_data_pages(), 0);
    }

    #[test]
    fn time_order_enforced() {
        let f = Flash::small(8);
        let mut t = SpatialTrace::new(&f);
        t.record(0, 0, 100).unwrap();
        match t.record(0, 0, 99) {
            Err(DbError::OutOfOrderTimestamp { last: 100, got: 99 }) => {}
            other => panic!("expected out-of-order error, got {other:?}"),
        }
    }

    #[test]
    fn prop_window_query_equals_oracle() {
        for case in 0..24u64 {
            let mut rng = StdRng::seed_from_u64(0x59A7 + case);
            let f = Flash::small(512);
            let mut trace = SpatialTrace::new(&f);
            let mut all = Vec::new();
            for i in 0..rng.gen_range(1u64..300) {
                let (x, y) = (rng.gen_range(-100i32..100), rng.gen_range(-100i32..100));
                trace.record(x, y, i).unwrap();
                all.push(Point { x, y, ts: i });
            }
            let wx = (rng.gen_range(-100i32..100), rng.gen_range(-100i32..100));
            let wy = (rng.gen_range(-100i32..100), rng.gen_range(-100i32..100));
            let w = Window {
                x: (wx.0.min(wx.1), wx.0.max(wx.1)),
                y: (wy.0.min(wy.1), wy.0.max(wy.1)),
                t: (0, u64::MAX),
            };
            assert_eq!(
                trace.window_query(&w).unwrap(),
                oracle(&all, &w),
                "case {case}"
            );
        }
    }
}

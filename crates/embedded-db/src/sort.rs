//! External merge sort built exclusively from log structures.
//!
//! Step 1 of a reorganization: "Sort the (key, pointer) pairs → temporary
//! logs (sorted "runs") → result written sequentially: «Sorted Keys»."
//! Runs are plain logs; the merge reads one page per run and writes one
//! sequential output log; temporary runs are reclaimed at block grain the
//! moment they are merged. RAM use — the run buffer during run formation,
//! one page per merged run during the merge — is charged to the MCU
//! budget, and the merge fan-in is derived from it.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pds_flash::{Flash, Log};
use pds_mcu::RamBudget;

use crate::error::DbError;
use crate::table::RowId;

/// One sortable entry: an order-preserving key and a rowid payload.
pub type SortEntry = (Vec<u8>, RowId);

fn encode_entry(key: &[u8], rowid: RowId) -> Vec<u8> {
    let mut rec = Vec::with_capacity(2 + key.len() + 4);
    rec.extend_from_slice(&(key.len() as u16).to_le_bytes());
    rec.extend_from_slice(key);
    rec.extend_from_slice(&rowid.to_le_bytes());
    rec
}

/// Decode an entry record written by a run or output log.
pub fn decode_entry(rec: &[u8]) -> Option<SortEntry> {
    let klen = u16::from_le_bytes(rec.get(0..2)?.try_into().ok()?) as usize;
    let key = rec.get(2..2 + klen)?.to_vec();
    let rowid = u32::from_le_bytes(rec.get(2 + klen..2 + klen + 4)?.try_into().ok()?);
    Some((key, rowid))
}

/// Sort `entries` by `(key, rowid)` into a sealed output log.
///
/// `run_bytes` bounds the RAM used for run formation; the merge fan-in is
/// `merge_pages` (one RAM page per run being merged). Both are reserved
/// from `ram` and the sort fails with [`DbError::Ram`] if the device
/// cannot afford them.
pub fn external_sort(
    flash: &Flash,
    ram: &RamBudget,
    entries: impl Iterator<Item = SortEntry>,
    run_bytes: usize,
    merge_pages: usize,
) -> Result<Log, DbError> {
    // pds-lint: allow(panic.assert) — fan-in is a caller-chosen RAM-budget
    // constant fixed at plan time, never derived from stored data.
    assert!(merge_pages >= 2, "merge needs at least fan-in 2");
    // Phase 1: sorted run formation.
    let mut runs: Vec<Log> = Vec::new();
    {
        let mut guard = ram.reserve(0)?;
        let mut buffer: Vec<SortEntry> = Vec::new();
        let mut buffered = 0usize;
        for (key, rowid) in entries {
            let sz = key.len() + 8;
            guard.grow(sz)?;
            buffered += sz;
            buffer.push((key, rowid));
            if buffered >= run_bytes {
                runs.push(write_run(flash, &mut buffer)?);
                guard.shrink(buffered);
                buffered = 0;
            }
        }
        if !buffer.is_empty() {
            runs.push(write_run(flash, &mut buffer)?);
        }
    }
    if runs.is_empty() {
        return Ok(flash.new_log().seal()?);
    }
    // Phase 2: iterative fan-in-limited merge.
    while runs.len() > 1 {
        let take = runs.len().min(merge_pages);
        let group: Vec<Log> = runs.drain(..take).collect();
        let merged = merge_runs(flash, ram, &group)?;
        for run in group {
            run.reclaim();
        }
        runs.push(merged);
    }
    runs.pop()
        .ok_or(DbError::Corrupt("external sort merged away every run"))
}

fn write_run(flash: &Flash, buffer: &mut Vec<SortEntry>) -> Result<Log, DbError> {
    buffer.sort();
    let mut w = flash.new_log();
    for (key, rowid) in buffer.drain(..) {
        w.append(&encode_entry(&key, rowid))?;
    }
    Ok(w.seal()?)
}

fn merge_runs(flash: &Flash, ram: &RamBudget, runs: &[Log]) -> Result<Log, DbError> {
    // One page of RAM per run: the LogReader window.
    let _guard = ram.reserve(runs.len() * flash.geometry().page_size)?;
    let mut readers: Vec<_> = runs.iter().map(|r| r.reader()).collect();
    let mut heap: BinaryHeap<Reverse<(SortEntry, usize)>> = BinaryHeap::new();
    for (i, r) in readers.iter_mut().enumerate() {
        if let Some(rec) = r.next() {
            let entry = decode_entry(&rec?).ok_or(DbError::Corrupt("sort run"))?;
            heap.push(Reverse((entry, i)));
        }
    }
    let mut out = flash.new_log();
    while let Some(Reverse(((key, rowid), i))) = heap.pop() {
        out.append(&encode_entry(&key, rowid))?;
        if let Some(rec) = readers[i].next() {
            let entry = decode_entry(&rec?).ok_or(DbError::Corrupt("sort run"))?;
            heap.push(Reverse((entry, i)));
        }
    }
    Ok(out.seal()?)
}

/// Read back a sorted log as entries (test/consumer aid; one page of RAM).
pub fn read_sorted(log: &Log) -> Result<Vec<SortEntry>, DbError> {
    log.reader()
        .map(|rec| decode_entry(&rec?).ok_or(DbError::Corrupt("sorted log")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_obs::rng::StdRng;
    use pds_obs::rng::{Rng, SeedableRng};

    fn setup() -> (Flash, RamBudget) {
        (Flash::small(512), RamBudget::new(64 * 1024))
    }

    #[test]
    fn sorts_random_input() {
        let (f, ram) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let entries: Vec<SortEntry> = (0..5000u32)
            .map(|i| (rng.gen::<u32>().to_be_bytes().to_vec(), i))
            .collect();
        let mut expected = entries.clone();
        expected.sort();
        let log = external_sort(&f, &ram, entries.into_iter(), 4096, 4).unwrap();
        assert_eq!(read_sorted(&log).unwrap(), expected);
    }

    #[test]
    fn multi_pass_merge_with_tiny_fan_in() {
        let (f, ram) = setup();
        let entries: Vec<SortEntry> = (0..2000u32)
            .rev()
            .map(|i| (i.to_be_bytes().to_vec(), i))
            .collect();
        // Tiny runs (many of them) + fan-in 2 forces several merge passes.
        let log = external_sort(&f, &ram, entries.into_iter(), 256, 2).unwrap();
        let sorted = read_sorted(&log).unwrap();
        assert_eq!(sorted.len(), 2000);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn temporary_runs_are_reclaimed() {
        let (f, ram) = setup();
        let before = f.free_blocks();
        let entries: Vec<SortEntry> = (0..3000u32)
            .map(|i| ((i * 7 % 997).to_be_bytes().to_vec(), i))
            .collect();
        let log = external_sort(&f, &ram, entries.into_iter(), 512, 3).unwrap();
        let output_blocks = log.num_blocks();
        assert_eq!(
            f.free_blocks(),
            before - output_blocks,
            "only the output log may keep blocks"
        );
        log.reclaim();
        assert_eq!(f.free_blocks(), before);
    }

    #[test]
    fn duplicate_keys_order_by_rowid() {
        let (f, ram) = setup();
        let entries = vec![
            (b"k".to_vec(), 5),
            (b"k".to_vec(), 1),
            (b"a".to_vec(), 9),
            (b"k".to_vec(), 3),
        ];
        let log = external_sort(&f, &ram, entries.into_iter(), 64, 2).unwrap();
        assert_eq!(
            read_sorted(&log).unwrap(),
            vec![
                (b"a".to_vec(), 9),
                (b"k".to_vec(), 1),
                (b"k".to_vec(), 3),
                (b"k".to_vec(), 5),
            ]
        );
    }

    #[test]
    fn empty_input_yields_empty_log() {
        let (f, ram) = setup();
        let log = external_sort(&f, &ram, std::iter::empty(), 1024, 2).unwrap();
        assert_eq!(log.num_records(), 0);
    }

    #[test]
    fn ram_budget_bounds_run_buffer() {
        let f = Flash::small(64);
        let ram = RamBudget::new(1024); // smaller than the requested run
        let entries = (0..1000u32).map(|i| (i.to_be_bytes().to_vec(), i));
        let err = external_sort(&f, &ram, entries, 64 * 1024, 2).unwrap_err();
        assert!(matches!(err, DbError::Ram(_)));
    }

    #[test]
    fn merge_ram_is_one_page_per_run() {
        let (f, ram) = setup();
        ram.reset_high_water();
        let entries: Vec<SortEntry> = (0..4000u32)
            .rev()
            .map(|i| (i.to_be_bytes().to_vec(), i))
            .collect();
        external_sort(&f, &ram, entries.into_iter(), 2048, 4).unwrap();
        let page = f.geometry().page_size;
        // Peak is max(run buffer, fan_in pages) + slack.
        assert!(
            ram.high_water() <= 2048 + 4 * page + 512,
            "peak {} exceeds the declared sort budget",
            ram.high_water()
        );
    }
}

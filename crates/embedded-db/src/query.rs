//! The mini relational layer: catalog, predicates, planner.
//!
//! A [`Database`] groups the tables of one personal data server with their
//! selection indexes. The planner implements the access-method ladder of
//! Part II: a fresh column is answered by a **full scan**; once a PBFilter
//! exists, by a **summary scan**; once the column has been reorganized, by
//! a **tree lookup** — each step an order of magnitude cheaper, which is
//! what the E1/E2 experiments measure.

use std::collections::HashMap;

use pds_flash::{BlockId, ChangeRec, Flash};
use pds_mcu::RamBudget;

use crate::error::DbError;
use crate::hlc::Hlc;
use crate::mvcc::{kind, GcReport, MvccManifest, MvccRecovery, MvccState, Snapshot, DOC_STORE};
use crate::pbfilter::PBFilter;
use crate::reorg;
use crate::table::{RowId, Table, TableManifest};
use crate::tree::TreeIndex;
use crate::value::{Row, Schema, Value};

/// Durable identity of a [`Database`] across a power cycle: the manifest
/// of every table plus the erase blocks of every selection index. A real
/// token persists this in a catalog log; the simulation carries it across
/// the reboot in RAM.
///
/// Indexes are *derived* state (rebuildable from the tables by
/// `create_index`/`reorganize_index`), so only their blocks are recorded —
/// recovery frees them and comes back index-less.
#[derive(Debug, Clone)]
pub struct DatabaseManifest {
    /// Per-table manifests, in creation order.
    pub tables: Vec<TableManifest>,
    /// Blocks of every PBFilter and tree index, freed on recovery.
    pub index_blocks: Vec<BlockId>,
    /// Version-state manifest, when MVCC is enabled.
    pub mvcc: Option<MvccManifest>,
}

/// What [`Database::recover`] hands back: the rebuilt database,
/// per-table `(name, rows_lost)`, and the MVCC recovery report when
/// MVCC was enabled.
pub type DbRecovery = (Database, Vec<(String, u32)>, Option<MvccRecovery>);

/// A selection predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// `column = value`.
    Eq {
        /// Column name.
        column: String,
        /// Match value.
        value: Value,
    },
    /// `lo ≤ column ≤ hi` (inclusive range).
    Between {
        /// Column name.
        column: String,
        /// Lower bound (inclusive).
        lo: Value,
        /// Upper bound (inclusive).
        hi: Value,
    },
}

impl Predicate {
    /// `column = value` shorthand.
    pub fn eq(column: &str, value: Value) -> Self {
        Predicate::Eq {
            column: column.to_string(),
            value,
        }
    }

    /// `lo ≤ column ≤ hi` shorthand.
    pub fn between(column: &str, lo: Value, hi: Value) -> Self {
        Predicate::Between {
            column: column.to_string(),
            lo,
            hi,
        }
    }

    /// The column the predicate constrains.
    pub fn column(&self) -> &str {
        match self {
            Predicate::Eq { column, .. } | Predicate::Between { column, .. } => column,
        }
    }

    /// Whether a column value satisfies the predicate (the evaluation
    /// primitive standing queries re-run over change-log deltas).
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            Predicate::Eq { value, .. } => v == value,
            Predicate::Between { lo, hi, .. } => v >= lo && v <= hi,
        }
    }
}

/// The access method the planner selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryPlan {
    /// Sequential scan of the data pages.
    FullScan,
    /// PBFilter summary scan + targeted key-page probes.
    SummaryScan,
    /// Descent of the reorganized B-tree-like index.
    TreeLookup,
}

impl QueryPlan {
    /// Stable name used as the `db.plan` span attribute.
    pub fn name(&self) -> &'static str {
        match self {
            QueryPlan::FullScan => "full_scan",
            QueryPlan::SummaryScan => "summary_scan",
            QueryPlan::TreeLookup => "tree_lookup",
        }
    }
}

enum ColumnIndex {
    PBFilter(PBFilter),
    Tree(TreeIndex),
}

/// A catalog of tables with their per-column selection indexes.
pub struct Database {
    flash: Flash,
    ram: RamBudget,
    tables: Vec<Table>,
    by_name: HashMap<String, usize>,
    /// (table, column) → index.
    indexes: HashMap<(usize, usize), ColumnIndex>,
    /// Version state (snapshots + change log), when enabled.
    mvcc: Option<MvccState>,
}

impl Database {
    /// An empty database on one token's resources.
    pub fn new(flash: &Flash, ram: &RamBudget) -> Self {
        Database {
            flash: flash.clone(),
            ram: ram.clone(),
            tables: Vec::new(),
            by_name: HashMap::new(),
            indexes: HashMap::new(),
            mvcc: None,
        }
    }

    /// The flash device (for I/O accounting in experiments).
    pub fn flash(&self) -> &Flash {
        &self.flash
    }

    /// Create a table.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<(), DbError> {
        if self.by_name.contains_key(name) {
            return Err(DbError::UnknownTable(format!("{name} already exists")));
        }
        self.by_name.insert(name.to_string(), self.tables.len());
        self.tables.push(Table::new(&self.flash, name, schema));
        Ok(())
    }

    fn table_idx(&self, name: &str) -> Result<usize, DbError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    fn column_idx(&self, t: usize, column: &str) -> Result<usize, DbError> {
        self.tables[t]
            .schema()
            .column_index(column)
            .ok_or_else(|| DbError::UnknownColumn {
                table: self.tables[t].name().to_string(),
                column: column.to_string(),
            })
    }

    /// Borrow a table.
    pub fn table(&self, name: &str) -> Result<&Table, DbError> {
        Ok(&self.tables[self.table_idx(name)?])
    }

    /// The change-record store id of `table` (its catalog index).
    pub fn store_id(&self, name: &str) -> Result<u16, DbError> {
        Ok(self.table_idx(name)? as u16)
    }

    /// All tables (for schema-tree construction).
    pub fn tables(&self) -> Vec<&Table> {
        self.tables.iter().collect()
    }

    /// Flush every table's buffered rows (and buffered change records)
    /// to flash.
    pub fn flush(&mut self) -> Result<(), DbError> {
        for t in &mut self.tables {
            t.flush()?;
        }
        if let Some(mvcc) = &mut self.mvcc {
            mvcc.flush()?;
        }
        Ok(())
    }

    // ---- MVCC: versioned reads and the change log -----------------------

    /// Turn on snapshot isolation: commits get HLC stamps (issued as
    /// `node`), snapshots pin versions, and every commit is appended to
    /// the durable change log. Enabling twice is a no-op.
    pub fn enable_mvcc(&mut self, node: u32) {
        if self.mvcc.is_none() {
            self.mvcc = Some(MvccState::new(&self.flash, node));
        }
    }

    /// The version state, when enabled.
    pub fn mvcc(&self) -> Option<&MvccState> {
        self.mvcc.as_ref()
    }

    /// Mutable version state, when enabled (causal merges, GC tuning).
    pub fn mvcc_mut(&mut self) -> Option<&mut MvccState> {
        self.mvcc.as_mut()
    }

    fn mvcc_ref(&self) -> Result<&MvccState, DbError> {
        self.mvcc.as_ref().ok_or(DbError::MvccDisabled)
    }

    /// Commit everything inserted since the last commit under one fresh
    /// HLC stamp: each grown table gets a version mark and one change
    /// record per new row. `Ok(None)` when nothing grew.
    pub fn commit(&mut self) -> Result<Option<Hlc>, DbError> {
        self.commit_with_docs(0)
    }

    /// [`commit`](Self::commit), additionally stamping the document
    /// store at length `docs` (the search engine rides the same change
    /// log under the reserved [`DOC_STORE`] id).
    pub fn commit_with_docs(&mut self, docs: u32) -> Result<Option<Hlc>, DbError> {
        let mut stores: Vec<(u16, u8, u32)> = self
            .tables
            .iter()
            .enumerate()
            .map(|(i, t)| (i as u16, kind::ROW_INSERT, t.num_rows()))
            .collect();
        stores.push((DOC_STORE, kind::DOC_APPEND, docs));
        self.mvcc
            .as_mut()
            .ok_or(DbError::MvccDisabled)?
            .commit(&stores)
    }

    /// Open a snapshot pinned to the current HLC: reads through it never
    /// observe later commits. Pair with [`release`](Self::release).
    pub fn snapshot(&mut self) -> Result<Snapshot, DbError> {
        Ok(self.mvcc.as_mut().ok_or(DbError::MvccDisabled)?.snapshot())
    }

    /// Release a snapshot's GC pin.
    pub fn release(&mut self, snap: &Snapshot) {
        if let Some(mvcc) = &mut self.mvcc {
            mvcc.release(snap);
        }
    }

    /// [`select`](Self::select) against a pinned snapshot: rows
    /// committed after the snapshot's HLC are invisible, whatever the
    /// access method. (Appends only grow the stores, so visibility is a
    /// rowid-prefix check on the snapshot's version mark.)
    pub fn select_at(
        &self,
        snap: &Snapshot,
        table: &str,
        pred: &Predicate,
    ) -> Result<Vec<(RowId, Row)>, DbError> {
        let t = self.table_idx(table)?;
        let visible = self.mvcc_ref()?.visible_at(snap, t as u16);
        let mut rows = self.select(table, pred)?;
        rows.retain(|&(rowid, _)| rowid < visible);
        Ok(rows)
    }

    /// The visible prefix length of `table` under `snap`.
    pub fn visible_rows(&self, snap: &Snapshot, table: &str) -> Result<u32, DbError> {
        let t = self.table_idx(table)?;
        Ok(self.mvcc_ref()?.visible_at(snap, t as u16))
    }

    /// Every change record committed strictly after `since`, in stamp
    /// order (table stores carry their catalog index, documents the
    /// reserved [`DOC_STORE`] id).
    pub fn changes_since(&self, since: Hlc) -> Result<Vec<ChangeRec>, DbError> {
        Ok(self.mvcc_ref()?.changes_since(since))
    }

    /// Collapse version history nothing can address anymore: marks and
    /// change records below the oldest open snapshot — capped by
    /// `keep_since`, the oldest consumer cursor still outstanding.
    pub fn gc_versions(&mut self, keep_since: Option<Hlc>) -> Result<GcReport, DbError> {
        self.mvcc
            .as_mut()
            .ok_or(DbError::MvccDisabled)?
            .gc(keep_since)
    }

    /// The database's durable identity, for [`recover`](Self::recover)
    /// after a power loss.
    pub fn manifest(&self) -> DatabaseManifest {
        let mut index_blocks = Vec::new();
        for idx in self.indexes.values() {
            match idx {
                ColumnIndex::PBFilter(pbf) => index_blocks.extend(pbf.blocks()),
                ColumnIndex::Tree(tree) => index_blocks.extend(tree.blocks()),
            }
        }
        DatabaseManifest {
            tables: self.tables.iter().map(Table::manifest).collect(),
            index_blocks,
            mvcc: self.mvcc.as_ref().map(MvccState::manifest),
        }
    }

    /// Rebuild a database after a power loss: every table recovers its
    /// durable row prefix; every selection index is dropped (its blocks
    /// return to the pool) and must be re-created from the recovered
    /// tables; the version state recovers its change log clamped to
    /// what the stores actually hold (`docs_recovered` supplies the
    /// document store's durable length, recovered by the layer above).
    /// Returns the database, per-table `(name, rows_lost)`, and the
    /// MVCC recovery report when MVCC was enabled.
    pub fn recover(
        flash: &Flash,
        ram: &RamBudget,
        m: &DatabaseManifest,
        docs_recovered: Option<u32>,
    ) -> Result<DbRecovery, DbError> {
        let mut tables = Vec::new();
        let mut by_name = HashMap::new();
        let mut losses = Vec::new();
        for tm in &m.tables {
            let (table, lost) = Table::recover(flash, tm)?;
            by_name.insert(tm.name.clone(), tables.len());
            tables.push(table);
            losses.push((tm.name.clone(), lost));
        }
        // Claim first so a block the reboot scan classified as free is
        // not double-inserted into the pool.
        for b in &m.index_blocks {
            let _ = flash.claim_block(*b);
            flash.free_block(*b);
        }
        let mut mvcc = None;
        let mut mvcc_report = None;
        if let Some(mm) = &m.mvcc {
            let mut lens: Vec<(u16, u8, u32)> = tables
                .iter()
                .enumerate()
                .map(|(i, t)| (i as u16, kind::ROW_INSERT, t.num_rows()))
                .collect();
            if let Some(docs) = docs_recovered {
                lens.push((DOC_STORE, kind::DOC_APPEND, docs));
            }
            let (state, report) = MvccState::recover(flash, mm, &lens)?;
            mvcc = Some(state);
            mvcc_report = Some(report);
        }
        Ok((
            Database {
                flash: flash.clone(),
                ram: ram.clone(),
                tables,
                by_name,
                indexes: HashMap::new(),
                mvcc,
            },
            losses,
            mvcc_report,
        ))
    }

    /// Insert a row, maintaining every index of the table.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<RowId, DbError> {
        let t = self.table_idx(table)?;
        let rowid = self.tables[t].insert(&row)?;
        for ((ti, ci), idx) in &mut self.indexes {
            if *ti != t {
                continue;
            }
            match idx {
                ColumnIndex::PBFilter(pbf) => {
                    pbf.insert(&row[*ci].to_key_bytes(), rowid)?;
                }
                ColumnIndex::Tree(_) => {
                    // A reorganized index is read-only; new keys go to a
                    // fresh PBFilter delta in a full system. The tutorial's
                    // experiments insert first and reorganize after, which
                    // this layer enforces:
                    return Err(DbError::Corrupt(
                        "insert into a reorganized column (create a delta index first)",
                    ));
                }
            }
        }
        Ok(rowid)
    }

    /// Create a PBFilter on `table.column`, indexing existing rows.
    pub fn create_index(&mut self, table: &str, column: &str) -> Result<(), DbError> {
        let span = pds_obs::span!("db.create_index", "db.table" => table, "db.column" => column);
        let before = self.flash.stats();
        let t = self.table_idx(table)?;
        let c = self.column_idx(t, column)?;
        let mut pbf = PBFilter::new(&self.flash);
        self.tables[t].scan(|rowid, row| {
            // Scan is infallible on well-formed tables; surface flash
            // exhaustion via the post-check below.
            let _ = pbf.insert(&row[c].to_key_bytes(), rowid);
        })?;
        pbf.flush()?;
        self.indexes.insert((t, c), ColumnIndex::PBFilter(pbf));
        (self.flash.stats() - before).attach_to_span(&span);
        Ok(())
    }

    /// Reorganize `table.column`'s PBFilter into a tree index.
    pub fn reorganize_index(&mut self, table: &str, column: &str) -> Result<(), DbError> {
        let span =
            pds_obs::span!("db.reorganize_index", "db.table" => table, "db.column" => column);
        let before = self.flash.stats();
        let t = self.table_idx(table)?;
        let c = self.column_idx(t, column)?;
        let Some(ColumnIndex::PBFilter(pbf)) = self.indexes.get(&(t, c)) else {
            return Err(DbError::Corrupt("no PBFilter to reorganize"));
        };
        let tree = reorg::reorganize(&self.flash, &self.ram, pbf)?;
        // Swap, then reclaim the old index wholesale.
        if let Some(ColumnIndex::PBFilter(old)) =
            self.indexes.insert((t, c), ColumnIndex::Tree(tree))
        {
            old.discard();
        }
        (self.flash.stats() - before).attach_to_span(&span);
        Ok(())
    }

    /// The plan [`select`](Self::select) would use for this predicate.
    ///
    /// Range predicates need key order: only the reorganized tree serves
    /// them; a PBFilter (hash-style Bloom summaries) cannot, so ranges
    /// fall back to a scan until the column is reorganized.
    pub fn explain(&self, table: &str, pred: &Predicate) -> Result<QueryPlan, DbError> {
        let t = self.table_idx(table)?;
        let c = self.column_idx(t, pred.column())?;
        Ok(match (self.indexes.get(&(t, c)), pred) {
            (Some(ColumnIndex::Tree(_)), _) => QueryPlan::TreeLookup,
            (Some(ColumnIndex::PBFilter(_)), Predicate::Eq { .. }) => QueryPlan::SummaryScan,
            _ => QueryPlan::FullScan,
        })
    }

    /// Evaluate `SELECT * FROM table WHERE pred`, returning matching
    /// `(rowid, row)` pairs in rowid order.
    pub fn select(&self, table: &str, pred: &Predicate) -> Result<Vec<(RowId, Row)>, DbError> {
        let span = pds_obs::span!("db.select", "db.table" => table);
        let before = self.flash.stats();
        let t = self.table_idx(table)?;
        let c = self.column_idx(t, pred.column())?;
        let plan = self.explain(table, pred)?;
        span.set("db.plan", plan.name());
        let result: Vec<(RowId, Row)> = match (self.indexes.get(&(t, c)), pred) {
            (Some(ColumnIndex::Tree(tree)), Predicate::Eq { value, .. }) => {
                let ids = {
                    let _op = pds_obs::span!("db.op.tree_lookup");
                    tree.lookup(&value.to_key_bytes())?
                };
                self.fetch_rows(t, ids)?
            }
            (Some(ColumnIndex::Tree(tree)), Predicate::Between { lo, hi, .. }) => {
                let ids = {
                    let _op = pds_obs::span!("db.op.tree_range");
                    let mut ids: Vec<RowId> = tree
                        .lookup_range(&lo.to_key_bytes(), &hi.to_key_bytes())?
                        .into_iter()
                        .map(|(_, r)| r)
                        .collect();
                    ids.sort_unstable();
                    ids
                };
                self.fetch_rows(t, ids)?
            }
            (Some(ColumnIndex::PBFilter(pbf)), Predicate::Eq { value, .. }) => {
                let ids = {
                    let _op = pds_obs::span!("db.op.summary_scan");
                    pbf.lookup(&value.to_key_bytes())?
                };
                self.fetch_rows(t, ids)?
            }
            _ => {
                let _op = pds_obs::span!("db.op.full_scan");
                let mut hits = Vec::new();
                self.tables[t].scan(|rowid, row| {
                    if pred.matches(&row[c]) {
                        hits.push((rowid, row));
                    }
                })?;
                hits
            }
        };
        span.set("db.rows", result.len() as u64);
        (self.flash.stats() - before).attach_to_span(&span);
        Ok(result)
    }

    /// Materialize rowids into `(rowid, row)` pairs under a fetch span.
    fn fetch_rows(&self, t: usize, rowids: Vec<RowId>) -> Result<Vec<(RowId, Row)>, DbError> {
        let _op = pds_obs::span!("db.op.fetch_rows", "db.rows" => rowids.len() as u64);
        rowids
            .into_iter()
            .map(|r| Ok((r, self.tables[t].get(r)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ColumnType;

    fn db_with_customers(n: u64) -> Database {
        let f = Flash::small(2048);
        let ram = RamBudget::new(64 * 1024);
        let mut db = Database::new(&f, &ram);
        db.create_table(
            "CUSTOMER",
            Schema::new(&[
                ("id", ColumnType::U64),
                ("city", ColumnType::Str),
                ("segment", ColumnType::Str),
            ]),
        )
        .unwrap();
        let cities = ["Lyon", "Paris", "Nice", "Lille"];
        for i in 0..n {
            db.insert(
                "CUSTOMER",
                vec![
                    Value::U64(i),
                    Value::str(cities[(i % 4) as usize]),
                    Value::str(if i % 2 == 0 { "HOUSEHOLD" } else { "AUTO" }),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn plan_ladder_full_scan_summary_tree() {
        let mut db = db_with_customers(500);
        let pred = Predicate::eq("city", Value::str("Lyon"));
        assert_eq!(db.explain("CUSTOMER", &pred).unwrap(), QueryPlan::FullScan);
        let scan = db.select("CUSTOMER", &pred).unwrap();

        db.create_index("CUSTOMER", "city").unwrap();
        assert_eq!(
            db.explain("CUSTOMER", &pred).unwrap(),
            QueryPlan::SummaryScan
        );
        let summary = db.select("CUSTOMER", &pred).unwrap();

        db.reorganize_index("CUSTOMER", "city").unwrap();
        assert_eq!(
            db.explain("CUSTOMER", &pred).unwrap(),
            QueryPlan::TreeLookup
        );
        let tree = db.select("CUSTOMER", &pred).unwrap();

        assert_eq!(scan.len(), 125);
        assert_eq!(scan, summary);
        assert_eq!(scan, tree);
    }

    #[test]
    fn index_maintained_on_insert() {
        let mut db = db_with_customers(10);
        db.create_index("CUSTOMER", "city").unwrap();
        db.insert(
            "CUSTOMER",
            vec![Value::U64(10), Value::str("Lyon"), Value::str("AUTO")],
        )
        .unwrap();
        let hits = db
            .select("CUSTOMER", &Predicate::eq("city", Value::str("Lyon")))
            .unwrap();
        assert!(hits.iter().any(|(r, _)| *r == 10));
    }

    #[test]
    fn insert_into_reorganized_column_is_rejected() {
        let mut db = db_with_customers(50);
        db.create_index("CUSTOMER", "city").unwrap();
        db.reorganize_index("CUSTOMER", "city").unwrap();
        let err = db
            .insert(
                "CUSTOMER",
                vec![Value::U64(99), Value::str("Lyon"), Value::str("AUTO")],
            )
            .unwrap_err();
        assert!(matches!(err, DbError::Corrupt(_)));
    }

    #[test]
    fn unknown_names_error() {
        let db = db_with_customers(5);
        assert!(db
            .select("NOPE", &Predicate::eq("city", Value::str("Lyon")))
            .is_err());
        assert!(db
            .select("CUSTOMER", &Predicate::eq("nope", Value::str("x")))
            .is_err());
    }

    #[test]
    fn range_predicates_use_the_tree_and_match_scans() {
        let mut db = db_with_customers(300);
        let pred = Predicate::between("id", Value::U64(50), Value::U64(120));
        // Scan path first.
        assert_eq!(db.explain("CUSTOMER", &pred).unwrap(), QueryPlan::FullScan);
        let scan = db.select("CUSTOMER", &pred).unwrap();
        assert_eq!(scan.len(), 71);
        // PBFilter cannot serve ranges: still a scan.
        db.create_index("CUSTOMER", "id").unwrap();
        assert_eq!(db.explain("CUSTOMER", &pred).unwrap(), QueryPlan::FullScan);
        assert_eq!(db.select("CUSTOMER", &pred).unwrap(), scan);
        // The reorganized tree serves ranges.
        db.reorganize_index("CUSTOMER", "id").unwrap();
        assert_eq!(
            db.explain("CUSTOMER", &pred).unwrap(),
            QueryPlan::TreeLookup
        );
        assert_eq!(db.select("CUSTOMER", &pred).unwrap(), scan);
        // Equality on the same tree still works too.
        let eq = db
            .select("CUSTOMER", &Predicate::eq("id", Value::U64(99)))
            .unwrap();
        assert_eq!(eq.len(), 1);
    }

    #[test]
    fn recover_restores_tables_and_drops_indexes() {
        let mut db = db_with_customers(300);
        db.create_index("CUSTOMER", "city").unwrap();
        db.reorganize_index("CUSTOMER", "id").unwrap_err(); // no PBFilter on id
        db.create_index("CUSTOMER", "id").unwrap();
        db.reorganize_index("CUSTOMER", "id").unwrap();
        db.flush().unwrap();
        let pred = Predicate::eq("city", Value::str("Lyon"));
        let before = db.select("CUSTOMER", &pred).unwrap();
        let manifest = db.manifest();

        let rebooted = db.flash.reboot();
        let free_after_reboot = rebooted.free_blocks();
        let ram = RamBudget::new(64 * 1024);
        let (mut rec, losses, mvcc_rep) =
            Database::recover(&rebooted, &ram, &manifest, None).unwrap();
        assert_eq!(losses, vec![("CUSTOMER".to_string(), 0)]);
        assert!(mvcc_rep.is_none(), "MVCC was never enabled");
        // Indexes are gone (their programmed blocks, orphaned by the
        // reboot scan, are back in the pool) but the planner ladder
        // climbs again from a scan.
        assert_eq!(rec.explain("CUSTOMER", &pred).unwrap(), QueryPlan::FullScan);
        assert_eq!(rec.select("CUSTOMER", &pred).unwrap(), before);
        assert_eq!(
            rec.flash().free_blocks(),
            free_after_reboot + manifest.index_blocks.len()
        );
        rec.create_index("CUSTOMER", "city").unwrap();
        assert_eq!(rec.select("CUSTOMER", &pred).unwrap(), before);
        // And the recovered table keeps accepting rows.
        rec.insert(
            "CUSTOMER",
            vec![Value::U64(300), Value::str("Lyon"), Value::str("AUTO")],
        )
        .unwrap();
        assert_eq!(rec.table("CUSTOMER").unwrap().num_rows(), 301);
    }

    #[test]
    fn snapshot_reads_ignore_later_commits_on_every_plan() {
        let mut db = db_with_customers(200);
        db.enable_mvcc(9);
        db.commit().unwrap();
        let snap = db.snapshot().unwrap();
        let pred = Predicate::eq("city", Value::str("Lyon"));
        let at_snap = db.select_at(&snap, "CUSTOMER", &pred).unwrap();
        assert_eq!(at_snap.len(), 50);

        // 100 more Lyon rows land and commit; the snapshot is blind to
        // them under scan, summary and tree plans alike.
        for i in 200..300u64 {
            db.insert(
                "CUSTOMER",
                vec![Value::U64(i), Value::str("Lyon"), Value::str("AUTO")],
            )
            .unwrap();
        }
        db.commit().unwrap();
        assert_eq!(db.select_at(&snap, "CUSTOMER", &pred).unwrap(), at_snap);
        db.create_index("CUSTOMER", "city").unwrap();
        assert_eq!(db.select_at(&snap, "CUSTOMER", &pred).unwrap(), at_snap);
        db.reorganize_index("CUSTOMER", "city").unwrap();
        assert_eq!(db.select_at(&snap, "CUSTOMER", &pred).unwrap(), at_snap);
        // A fresh snapshot sees everything.
        let now = db.snapshot().unwrap();
        assert_eq!(db.select_at(&now, "CUSTOMER", &pred).unwrap().len(), 150);
        db.release(&snap);
        db.release(&now);
    }

    #[test]
    fn mvcc_state_survives_recovery() {
        let mut db = db_with_customers(100);
        db.enable_mvcc(4);
        let c1 = db.commit().unwrap().unwrap();
        db.insert(
            "CUSTOMER",
            vec![Value::U64(100), Value::str("Lyon"), Value::str("AUTO")],
        )
        .unwrap();
        let c2 = db.commit().unwrap().unwrap();
        db.flush().unwrap();
        let manifest = db.manifest();

        let rebooted = db.flash.reboot();
        let ram = RamBudget::new(64 * 1024);
        let (mut rec, losses, mvcc_rep) =
            Database::recover(&rebooted, &ram, &manifest, None).unwrap();
        assert_eq!(losses, vec![("CUSTOMER".to_string(), 0)]);
        let rep = mvcc_rep.unwrap();
        assert_eq!(rep.changes_recovered, 101);
        assert_eq!(rep.changes_dropped, 0);
        // The change cursor picks up exactly where it left off.
        let after_c1 = rec.changes_since(c1).unwrap();
        assert_eq!(after_c1.len(), 1);
        assert_eq!(after_c1[0].entity, 100);
        assert_eq!(rec.changes_since(c2).unwrap(), vec![]);
        // And the next commit stamps strictly after the recovered history.
        rec.insert(
            "CUSTOMER",
            vec![Value::U64(101), Value::str("Nice"), Value::str("AUTO")],
        )
        .unwrap();
        let c3 = rec.commit().unwrap().unwrap();
        assert!(c3 > c2);
    }

    #[test]
    fn mvcc_calls_error_when_disabled() {
        let mut db = db_with_customers(5);
        assert!(matches!(db.commit(), Err(DbError::MvccDisabled)));
        assert!(matches!(db.snapshot(), Err(DbError::MvccDisabled)));
        assert!(matches!(
            db.changes_since(Hlc::ZERO),
            Err(DbError::MvccDisabled)
        ));
    }

    #[test]
    fn indexes_on_multiple_columns_coexist() {
        let mut db = db_with_customers(200);
        db.create_index("CUSTOMER", "city").unwrap();
        db.create_index("CUSTOMER", "segment").unwrap();
        let by_city = db
            .select("CUSTOMER", &Predicate::eq("city", Value::str("Nice")))
            .unwrap();
        let by_seg = db
            .select("CUSTOMER", &Predicate::eq("segment", Value::str("AUTO")))
            .unwrap();
        assert_eq!(by_city.len(), 50);
        assert_eq!(by_seg.len(), 100);
    }
}

//! # pds-db — embedded relational database for secure tokens
//!
//! Part II's second illustration: "evaluate selections, projections,
//! joins" on the secure MCU, under the same framework as the search
//! engine — *indexes in log structures, pipeline evaluation, timely
//! reorganization*. This crate is a faithful reproduction of the
//! PBFilter / MILo-DB lineage the tutorial presents:
//!
//! * [`pbfilter`] — the sequential selection index: a **Keys log**
//!   (vertical partition of the indexed column, filled at insertion) and a
//!   **Bloom-filter summary log** (one ~2 B/key filter per Keys page).
//!   A lookup scans the compact summary log and probes only the Keys
//!   pages whose filter answers positive: "|Log2| I/O + 1 IO/result" —
//!   the slide's *Summary Scan, 17 IOs* against a *Table Scan, 640 IOs*.
//! * [`sort`] — external merge sort built exclusively from log structures
//!   (sorted runs are logs; the merge output is a log), the engine of
//!   reorganization.
//! * [`tree`] — a B-tree-like index **built strictly sequentially** from a
//!   sorted stream, level logs included, so the whole construction is
//!   legal NAND; lookups descend root→leaf in `height` page reads.
//! * [`reorg`] — "Scalability ⇒ timely reorganize the index": transforms a
//!   sequential PBFilter into a [`tree::TreeIndex`] using only log
//!   structures, in the background, interruptibly.
//! * [`climbing`] — the **Tselect/Tjoin** generalized indexes of the SPJ
//!   slide: Tselect maps a key to *sorted rowids of the query-root table*;
//!   Tjoin maps each root rowid to the rowids it references in the schema
//!   subtree. Select-project-join queries then run as a pure pipeline:
//!   merge-intersect sorted rowid streams, dereference through Tjoin.
//! * [`query`] — a mini relational layer: catalog, typed rows, predicates,
//!   a planner that picks scan / PBFilter / tree, and the SPJ executor.
//! * [`tpcd`] — the TPC-D-like dataset of the tutorial's example
//!   (CUSTOMER, ORDERS, LINEITEM, PARTSUPP, SUPPLIER) at configurable
//!   scale.
//!
//! The tutorial's closing "remaining challenges" ask for the framework to
//! be extended "to other data models: … time series, noSQL & key-value
//! stores"; both are built here with the same recipe:
//!
//! * [`hlc`] / [`mvcc`] — snapshot isolation over the append-only
//!   stores: hybrid-logical-clock commit stamps, prefix-length version
//!   marks, epoch-based GC, and a durable change log answering
//!   "changes since HLC h" (the primitive continuous queries and
//!   delta-based Trusted-Cells sync build on).
//! * [`timeseries`] — a log-structured time series with pre-aggregated
//!   page summaries (range aggregates at summary-scan cost).
//! * [`kv`] — a log-structured key-value store with Bloom page summaries,
//!   version shadowing, tombstones and block-grain compaction.
//! * [`spatial`] — a spatio-temporal trace with per-page MBR summaries
//!   (window queries at summary-scan cost).

pub mod climbing;
pub mod error;
pub mod hlc;
pub mod kv;
pub mod mvcc;
pub mod pbfilter;
pub mod query;
pub mod reorg;
pub mod sort;
pub mod spatial;
pub mod table;
pub mod timeseries;
pub mod tpcd;
pub mod tree;
pub mod value;

pub use climbing::{SchemaTree, TjoinIndex, TselectIndex};
pub use error::DbError;
pub use hlc::{Hlc, HlcClock};
pub use kv::KvStore;
pub use mvcc::{GcReport, MvccManifest, MvccRecovery, MvccState, Snapshot, DOC_STORE};
pub use pbfilter::PBFilter;
pub use query::{Database, DatabaseManifest, Predicate, QueryPlan};
pub use sort::external_sort;
pub use spatial::SpatialTrace;
pub use table::{RowId, Table, TableManifest};
pub use timeseries::TimeSeries;
pub use tree::TreeIndex;
pub use value::{Row, Schema, Value};

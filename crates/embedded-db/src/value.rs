//! Typed values, rows and schemas.
//!
//! The personal data of the tutorial is modestly typed — identifiers,
//! amounts, dates-as-integers, short strings (city, market segment,
//! supplier name). Keys must compare correctly as raw bytes so the log
//! indexes can sort and merge without deserializing: integers encode
//! big-endian, strings as their bytes.

use std::cmp::Ordering;
use std::fmt;

/// A column value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// Unsigned 64-bit integer (ids, amounts, dates).
    U64(u64),
    /// UTF-8 string (names, cities, segments).
    Str(String),
}

impl Value {
    /// Shorthand for a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(s.to_string())
    }

    /// The type tag used in serialization.
    fn tag(&self) -> u8 {
        match self {
            Value::U64(_) => 0,
            Value::Str(_) => 1,
        }
    }

    /// Order-preserving key encoding: compare two encodings of the same
    /// type with `memcmp` and you get the value order.
    pub fn to_key_bytes(&self) -> Vec<u8> {
        match self {
            Value::U64(v) => v.to_be_bytes().to_vec(),
            Value::Str(s) => s.as_bytes().to_vec(),
        }
    }

    /// Serialize: `tag ‖ payload` (u64 LE; string raw).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.tag());
        match self {
            Value::U64(v) => out.extend_from_slice(&v.to_le_bytes()),
            Value::Str(s) => {
                out.extend_from_slice(&(s.len() as u16).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }

    /// Deserialize from `buf[*off..]`, advancing `off`.
    pub fn decode(buf: &[u8], off: &mut usize) -> Option<Value> {
        let tag = *buf.get(*off)?;
        *off += 1;
        match tag {
            0 => {
                let bytes: [u8; 8] = buf.get(*off..*off + 8)?.try_into().ok()?;
                *off += 8;
                Some(Value::U64(u64::from_le_bytes(bytes)))
            }
            1 => {
                let len_bytes: [u8; 2] = buf.get(*off..*off + 2)?.try_into().ok()?;
                let len = u16::from_le_bytes(len_bytes) as usize;
                *off += 2;
                let s = std::str::from_utf8(buf.get(*off..*off + len)?).ok()?;
                *off += len;
                Some(Value::Str(s.to_string()))
            }
            _ => None,
        }
    }

    /// The u64 payload, if this is a `U64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::U64(a), Value::U64(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            // Cross-type: by tag (schema-checked code never hits this).
            (a, b) => a.tag().cmp(&b.tag()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

/// A tuple.
pub type Row = Vec<Value>;

/// Encode a row: `u16 arity ‖ values`.
pub fn encode_row(row: &Row) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&(row.len() as u16).to_le_bytes());
    for v in row {
        v.encode(&mut out);
    }
    out
}

/// Decode a row produced by [`encode_row`].
pub fn decode_row(buf: &[u8]) -> Option<Row> {
    let arity = u16::from_le_bytes(buf.get(0..2)?.try_into().ok()?) as usize;
    let mut off = 2;
    let mut row = Vec::with_capacity(arity);
    for _ in 0..arity {
        row.push(Value::decode(buf, &mut off)?);
    }
    Some(row)
}

/// Declared column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// Maps to [`Value::U64`].
    U64,
    /// Maps to [`Value::Str`].
    Str,
}

/// A table schema: ordered, named, typed columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<(String, ColumnType)>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    pub fn new(columns: &[(&str, ColumnType)]) -> Self {
        Schema {
            columns: columns.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }

    /// Name of column `i`.
    pub fn column_name(&self, i: usize) -> &str {
        &self.columns[i].0
    }

    /// Type of column `i`.
    pub fn column_type(&self, i: usize) -> ColumnType {
        self.columns[i].1
    }

    /// Check a row against the schema.
    pub fn validate(&self, row: &Row) -> bool {
        row.len() == self.columns.len()
            && row.iter().zip(&self.columns).all(|(v, (_, t))| {
                matches!(
                    (v, t),
                    (Value::U64(_), ColumnType::U64) | (Value::Str(_), ColumnType::Str)
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds_obs::rng::{Rng, SeedableRng, StdRng};

    #[test]
    fn value_encode_decode_round_trips() {
        for v in [
            Value::U64(0),
            Value::U64(u64::MAX),
            Value::str(""),
            Value::str("Lyon"),
            Value::str("héllo wörld"),
        ] {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            let mut off = 0;
            assert_eq!(Value::decode(&buf, &mut off), Some(v));
            assert_eq!(off, buf.len());
        }
    }

    #[test]
    fn key_bytes_preserve_order() {
        let pairs = [(1u64, 2u64), (255, 256), (1 << 40, (1 << 40) + 1)];
        for (a, b) in pairs {
            assert!(
                Value::U64(a).to_key_bytes() < Value::U64(b).to_key_bytes(),
                "{a} vs {b}"
            );
        }
        assert!(Value::str("Lyon").to_key_bytes() < Value::str("Paris").to_key_bytes());
    }

    #[test]
    fn row_round_trip() {
        let row: Row = vec![Value::U64(7), Value::str("HOUSEHOLD"), Value::U64(42)];
        assert_eq!(decode_row(&encode_row(&row)), Some(row));
        assert_eq!(decode_row(&encode_row(&vec![])), Some(vec![]));
        assert_eq!(decode_row(&[1]), None, "truncated");
    }

    #[test]
    fn schema_validation() {
        let s = Schema::new(&[("id", ColumnType::U64), ("city", ColumnType::Str)]);
        assert!(s.validate(&vec![Value::U64(1), Value::str("Lyon")]));
        assert!(!s.validate(&vec![Value::str("Lyon"), Value::U64(1)]));
        assert!(!s.validate(&vec![Value::U64(1)]));
        assert_eq!(s.column_index("city"), Some(1));
        assert_eq!(s.column_index("nope"), None);
        assert_eq!(s.column_name(0), "id");
    }

    #[test]
    fn prop_row_round_trips() {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";
        for case in 0..256u64 {
            let mut rng = StdRng::seed_from_u64(0x7A10 + case);
            let mut row: Row = (0..rng.gen_range(0usize..6))
                .map(|_| Value::U64(rng.gen()))
                .collect();
            for _ in 0..rng.gen_range(0usize..6) {
                let s: String = (0..rng.gen_range(0usize..21))
                    .map(|_| ALPHABET[rng.gen_range(0usize..ALPHABET.len())] as char)
                    .collect();
                row.push(Value::Str(s));
            }
            assert_eq!(decode_row(&encode_row(&row)), Some(row), "case {case}");
        }
    }

    #[test]
    fn prop_u64_key_order() {
        let mut rng = StdRng::seed_from_u64(0x7A20);
        for _ in 0..256 {
            let (a, b): (u64, u64) = (rng.gen(), rng.gen());
            let ka = Value::U64(a).to_key_bytes();
            let kb = Value::U64(b).to_key_bytes();
            assert_eq!(ka.cmp(&kb), a.cmp(&b));
        }
    }
}

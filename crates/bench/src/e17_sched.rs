//! E17 — event-driven scheduler: [TNP14] aggregation at 10k–1M tokens.
//!
//! The pool-era fleet kept every token resident, so fleet size was
//! bounded by RAM. The event-driven scheduler (`pds-fleet::sched`)
//! bounds *residency* instead: tokens are woken in capped waves when
//! they have mail or a phase obligation and the least-recently-woken
//! are evicted back to parked state in between. E17 runs the full
//! secure-aggregation protocol at fleet sizes the pool could never
//! host and reports what that costs:
//!
//! * **critical-path ticks** — the causal length of the run on the
//!   virtual fabric, per phase (collection / reduction / distribution);
//! * **peak resident tokens** — the `fleet.resident_tokens` gauge: the
//!   most tokens simultaneously live, which must stay at the configured
//!   cap no matter the fleet size;
//! * **scheduler work** — wakes, evictions and factory rebuilds (the
//!   price of bounded RAM, all deterministic counters);
//! * **determinism** — every cell re-runs at 1 worker thread and the
//!   protocol result, bus schedule and the *entire* scheduler
//!   accounting must be bit-identical.
//!
//! At scale the sweep parks tokens with the drop-and-rebuild policy
//! (every fleet token is a pure function of `(seed, index)`); the
//! smallest cell also re-runs with flash-snapshot hibernation and must
//! produce the identical protocol result — the two eviction policies
//! are observationally equivalent where it matters.
//!
//! Environment knobs: `PDS_E17_TOKENS` (default 10_000; the acceptance
//! run uses 100_000), `PDS_E17_MAX_THREADS` (default 4), `PDS_E17_CAP`
//! (default 2_048).

use pds_fleet::{
    build_fleet, fleet_secure_aggregation, EvictPolicy, FleetConfig, OnTamper, SchedStats,
};
use pds_global::ssi::SsiThreat;
use pds_global::GroupByQuery;

use crate::table::Table;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One sweep cell.
pub struct E17Point {
    /// Fleet size.
    pub tokens: usize,
    /// Resident-token cap the scheduler enforced.
    pub cap: usize,
    /// Eviction policy.
    pub evict: EvictPolicy,
    /// Worker threads.
    pub workers: usize,
    /// Timed protocol phases, seconds.
    pub elapsed_s: f64,
    /// Causal length of the run in bus ticks (sum over phases).
    pub causal_ticks: u64,
    /// Scheduler accounting for the run.
    pub sched: SchedStats,
    /// Protocol result matched the plaintext reference.
    pub exact: bool,
    /// `(result, bus, sched)` fingerprint for cross-thread checks.
    pub fingerprint: (Vec<(String, u64)>, u64, SchedStats),
}

/// Run one capped fleet aggregation at the given shape.
pub fn measure(tokens: usize, workers: usize, cap: usize, evict: EvictPolicy) -> E17Point {
    let mut cfg = FleetConfig::new(tokens, workers, 0xE17);
    cfg.partition_size = 64;
    cfg.resident_cap = Some(cap);
    cfg.evict = evict;
    let query = GroupByQuery::bank_by_category();
    let mut fleet = build_fleet(&cfg, &query).expect("fleet build");
    let rep = fleet_secure_aggregation(
        &cfg,
        &query,
        &mut fleet,
        SsiThreat::HonestButCurious,
        OnTamper::Abort,
    )
    .expect("fleet aggregation");
    E17Point {
        tokens,
        cap,
        evict,
        workers,
        elapsed_s: rep.elapsed.as_secs_f64(),
        causal_ticks: rep.causal_ticks(),
        sched: rep.sched,
        exact: rep.result == rep.expected,
        fingerprint: (
            rep.result.clone(),
            rep.bus.delivered ^ rep.bus.retries ^ rep.bus.ticks,
            rep.sched,
        ),
    }
}

/// Regenerate the E17 table.
pub fn run() -> Table {
    let tokens = env_u64("PDS_E17_TOKENS", 10_000) as usize;
    let workers = env_u64("PDS_E17_MAX_THREADS", 4).max(1) as usize;
    let cap = env_u64("PDS_E17_CAP", 2_048) as usize;
    let mut sizes = vec![(tokens / 10).max(100), tokens];
    sizes.dedup();

    let mut t = Table::new(
        &format!(
            "E17 — event-driven scheduler, resident cap {cap}, {workers} workers \
             (secure aggregation with bounded-RAM token hosting)"
        ),
        &[
            "tokens",
            "policy",
            "time (s)",
            "ticks",
            "wakes",
            "evictions",
            "parked",
            "peak res",
            "exact",
            "determ",
        ],
    );

    for &n in &sizes {
        // The smallest cell proves the two eviction policies agree;
        // scale runs drop-and-rebuild only (a million sparse flash
        // snapshots is exactly the footprint the cap exists to avoid).
        let policies: &[EvictPolicy] = if n == *sizes.first().unwrap() {
            &[EvictPolicy::Rebuild, EvictPolicy::Hibernate]
        } else {
            &[EvictPolicy::Rebuild]
        };
        // Keep the cap biting at every size (a 1k-token warm-up cell
        // under a 2k cap would never evict and prove nothing).
        let cell_cap = cap.min((n / 2).max(1));
        for &evict in policies {
            let p = measure(n, workers, cell_cap, evict);
            // The determinism contract, re-proven per cell: result, bus
            // schedule and scheduler accounting bit-identical at 1
            // worker (a different shard layout entirely).
            let solo = measure(n, 1, cell_cap, evict);
            let deterministic = p.fingerprint == solo.fingerprint;
            let parked = match evict {
                EvictPolicy::Rebuild => p.sched.rebuilds,
                EvictPolicy::Hibernate => p.sched.sleep_wakes,
            };
            pds_obs::metrics::gauge(&format!("fleet.e17.causal_ticks.t{n}")).set(p.causal_ticks);
            pds_obs::metrics::gauge(&format!("fleet.e17.peak_resident.t{n}"))
                .set(p.sched.peak_resident);
            t.row(vec![
                n.to_string(),
                format!("{evict:?}"),
                format!("{:.3}", p.elapsed_s),
                p.causal_ticks.to_string(),
                p.sched.wakes.to_string(),
                p.sched.evictions.to_string(),
                parked.to_string(),
                p.sched.peak_resident.to_string(),
                if p.exact { "yes" } else { "NO" }.to_string(),
                if deterministic { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    t.note(
        "peak res = most tokens simultaneously live (the fleet.resident_tokens gauge); \
         bounded by the cap regardless of fleet size — that is the whole point",
    );
    t.note(
        "parked = factory rebuilds (Rebuild) or sleep-state revivals (Hibernate) \
         after an eviction; ticks = causal run length on the virtual fabric",
    );
    t.note(
        "determ = result, bus schedule and full scheduler accounting bit-identical \
         to the 1-worker re-run of the same cell (a different shard layout)",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capped_cell_is_exact_bounded_and_shard_independent() {
        let a = measure(200, 1, 32, EvictPolicy::Rebuild);
        let b = measure(200, 4, 32, EvictPolicy::Rebuild);
        assert!(a.exact && b.exact);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert!(a.sched.evictions > 0, "the cap bit");
        assert!(a.sched.peak_resident <= 32);
    }

    #[test]
    fn eviction_policies_agree_on_the_protocol() {
        let r = measure(200, 2, 32, EvictPolicy::Rebuild);
        let h = measure(200, 2, 32, EvictPolicy::Hibernate);
        assert_eq!(r.fingerprint.0, h.fingerprint.0, "same result");
        assert_eq!(r.causal_ticks, h.causal_ticks, "same causal schedule");
        assert!(h.sched.sleep_wakes > 0 && r.sched.rebuilds > 0);
    }
}

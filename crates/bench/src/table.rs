//! Plain-text result tables shared by all experiments.

use std::fmt;

/// A titled table of strings, printed with aligned columns.
pub struct Table {
    /// Experiment id + description.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form footnotes (paper-vs-measured commentary).
    pub notes: Vec<String>,
}

impl Table {
    /// Start an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    /// Append a footnote.
    pub fn note(&mut self, text: &str) {
        self.notes.push(text.to_string());
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                write!(f, "{:>w$}  ", c, w = widths[i])?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        )?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("E0 — smoke", &["param", "value"]);
        t.row(vec!["n".into(), "100".into()]);
        t.row(vec!["longer-param".into(), "7".into()]);
        t.note("a note");
        let s = t.to_string();
        assert!(s.contains("E0 — smoke"));
        assert!(s.contains("longer-param"));
        assert!(s.contains("note: a note"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}

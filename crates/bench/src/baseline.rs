//! Deterministic cost baselines: capture the `pds-obs` registry after a
//! scoped `report` run, commit the file, and fail CI when a
//! deterministic metric drifts (`report --check BENCH_BASELINE.json`).
//!
//! What counts as deterministic: counters and gauges whose names carry
//! no wall-clock unit suffix (`_ns`/`_us`/`_ms`) and no `elapsed`
//! substring — flash page IO, search pages-per-keyword, `mcu.ram`
//! high-water marks, `bus.*` delivery/redelivery tallies, `recovery.*`,
//! `lint.*` — plus every histogram's *count* (how many observations
//! happened is control flow; what they measured may be time). Events are
//! skipped; the `obs.events_dropped` counter stands in for ring
//! overflow. Wall-clock values are machine-dependent and never
//! baselined.
//!
//! A baseline also records which experiments ran ([`Baseline::scope`])
//! and the environment knobs that shaped them ([`ENV_KNOBS`]), so a
//! `--check` replay re-runs the exact same shape before comparing.

use std::collections::BTreeMap;
use std::fmt;

use pds_obs::json::{self, Json};

/// Environment knobs recorded at `--baseline` time and re-applied at
/// `--check` time, so the replay runs the recorded experiment shape
/// regardless of the checking machine's environment.
pub const ENV_KNOBS: &[&str] = &[
    "PDS_E14_TOKENS",
    "PDS_E14_MAX_THREADS",
    "PDS_E14_LATENCY_US",
    "PDS_E16_TOKENS",
    "PDS_E16_MAX_THREADS",
    "PDS_E17_TOKENS",
    "PDS_E17_MAX_THREADS",
    "PDS_E17_CAP",
    "PDS_E18_CELLS",
    "PDS_E18_MAX_THREADS",
    "PDS_E19_TOKENS",
    "PDS_E19_MAX_THREADS",
];

/// Is this metric name safe to compare exactly across machines?
fn deterministic(name: &str) -> bool {
    !(name.ends_with("_ns")
        || name.ends_with("_us")
        || name.ends_with("_ms")
        || name.contains("elapsed"))
}

/// A committed cost baseline: which experiments ran, under which env
/// knobs, and the deterministic metric values they produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// Experiment ids the capture ran (empty = every experiment).
    pub scope: Vec<String>,
    /// [`ENV_KNOBS`] that were set at capture time (absent = unset).
    pub env: BTreeMap<String, String>,
    /// Flat metric map: `counter:NAME`, `gauge:NAME`, `hist:NAME.count`.
    pub metrics: BTreeMap<String, u64>,
}

/// Snapshot the global registry's deterministic metrics plus the current
/// [`ENV_KNOBS`], tagged with the experiment scope that produced them.
pub fn capture(scope: &[String]) -> Baseline {
    let mut env = BTreeMap::new();
    for k in ENV_KNOBS {
        if let Ok(v) = std::env::var(k) {
            env.insert((*k).to_string(), v);
        }
    }
    let mut metrics = BTreeMap::new();
    for line in pds_obs::metrics::global().export_jsonl().lines() {
        let Some(j) = json::parse(line) else { continue };
        let (Some(ty), Some(name)) = (
            j.get("type").and_then(Json::as_str),
            j.get("name").and_then(Json::as_str),
        ) else {
            continue;
        };
        match ty {
            "counter" | "gauge" if deterministic(name) => {
                if let Some(v) = j.get("value").and_then(Json::as_u64) {
                    metrics.insert(format!("{ty}:{name}"), v);
                }
            }
            "histogram" => {
                if let Some(c) = j.get("count").and_then(Json::as_u64) {
                    metrics.insert(format!("hist:{name}.count"), c);
                }
            }
            _ => {}
        }
    }
    Baseline {
        scope: scope.to_vec(),
        env,
        metrics,
    }
}

impl Baseline {
    /// Re-apply the recorded env knobs (and clear unrecorded ones) so a
    /// `--check` replay runs the shape the baseline was captured under.
    pub fn apply_env(&self) {
        for k in ENV_KNOBS {
            match self.env.get(*k) {
                Some(v) => std::env::set_var(k, v),
                None => std::env::remove_var(k),
            }
        }
    }

    /// Serialize as a stable, diff-friendly JSON document (one metric
    /// per line, keys sorted — clean `git diff`s when regenerated).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"scope\": [");
        for (i, s) in self.scope.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::write_str(&mut out, s);
        }
        out.push_str("],\n  \"env\": {");
        for (i, (k, v)) in self.env.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json::write_str(&mut out, k);
            out.push_str(": ");
            json::write_str(&mut out, v);
        }
        if !self.env.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json::write_str(&mut out, k);
            out.push_str(&format!(": {v}"));
        }
        if !self.metrics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parse a baseline document. `None` on malformed JSON or schema.
    pub fn parse(text: &str) -> Option<Baseline> {
        let j = json::parse(text)?;
        let scope = j
            .get("scope")?
            .as_arr()?
            .iter()
            .map(|s| s.as_str().map(str::to_string))
            .collect::<Option<Vec<_>>>()?;
        let env = match j.get("env")? {
            Json::Obj(m) => m
                .iter()
                .map(|(k, v)| v.as_str().map(|v| (k.clone(), v.to_string())))
                .collect::<Option<BTreeMap<_, _>>>()?,
            _ => return None,
        };
        let metrics = match j.get("metrics")? {
            Json::Obj(m) => m
                .iter()
                .map(|(k, v)| v.as_u64().map(|v| (k.clone(), v)))
                .collect::<Option<BTreeMap<_, _>>>()?,
            _ => return None,
        };
        Some(Baseline {
            scope,
            env,
            metrics,
        })
    }

    /// Compare against a fresh capture: every mismatch, disappearance,
    /// and new arrival is one named [`Drift`]. Empty = the check passes.
    pub fn diff(&self, current: &Baseline) -> Vec<Drift> {
        let mut out = Vec::new();
        for (k, &b) in &self.metrics {
            match current.metrics.get(k) {
                Some(&c) if c == b => {}
                other => out.push(Drift {
                    metric: k.clone(),
                    baseline: Some(b),
                    current: other.copied(),
                }),
            }
        }
        for (k, &c) in &current.metrics {
            if !self.metrics.contains_key(k) {
                out.push(Drift {
                    metric: k.clone(),
                    baseline: None,
                    current: Some(c),
                });
            }
        }
        out
    }
}

/// One metric that no longer matches the committed baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Drift {
    /// Flat metric key (`counter:…`, `gauge:…`, `hist:….count`).
    pub metric: String,
    /// Committed value (`None` = metric is new since the baseline).
    pub baseline: Option<u64>,
    /// Re-measured value (`None` = metric vanished from the export).
    pub current: Option<u64>,
}

impl fmt::Display for Drift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.baseline, self.current) {
            (Some(b), Some(c)) => write!(f, "{}: baseline {b} -> current {c}", self.metric),
            (Some(b), None) => write!(f, "{}: baseline {b} -> missing", self.metric),
            (None, Some(c)) => write!(f, "{}: new metric (current {c})", self.metric),
            (None, None) => write!(f, "{}: unchanged", self.metric),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_names_are_not_deterministic() {
        assert!(deterministic("flash.page_reads"));
        assert!(deterministic("bus.redeliveries"));
        assert!(!deterministic("policy.decision_ns"));
        assert!(!deterministic("sync.round_us"));
        assert!(!deterministic("e2.elapsed_total"));
    }

    #[test]
    fn capture_filters_wall_clock_but_keeps_histogram_counts() {
        // Unique names: other tests share the process-global registry.
        pds_obs::metrics::counter("baseline.test.reads").add(7);
        pds_obs::metrics::counter("baseline.test.lat_ns").add(1234);
        pds_obs::metrics::gauge("baseline.test.peak").record_max(96);
        let h = pds_obs::metrics::histogram("baseline.test.op_ns");
        h.observe(10);
        h.observe(2000);
        let b = capture(&["e1".to_string()]);
        assert_eq!(b.metrics.get("counter:baseline.test.reads"), Some(&7));
        assert_eq!(b.metrics.get("gauge:baseline.test.peak"), Some(&96));
        assert_eq!(b.metrics.get("hist:baseline.test.op_ns.count"), Some(&2));
        assert!(!b.metrics.contains_key("counter:baseline.test.lat_ns"));
        assert!(b.metrics.contains_key("counter:obs.events_dropped"));
        assert_eq!(b.scope, vec!["e1"]);
    }

    #[test]
    fn json_round_trips() {
        let mut b = Baseline {
            scope: vec!["e1".into(), "e14".into()],
            env: BTreeMap::new(),
            metrics: BTreeMap::new(),
        };
        b.env.insert("PDS_E14_TOKENS".into(), "64".into());
        b.metrics.insert("counter:flash.page_reads".into(), 640);
        b.metrics.insert("hist:mcu.alloc.count".into(), 12);
        let text = b.to_json();
        assert_eq!(Baseline::parse(&text), Some(b));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(Baseline::parse("").is_none());
        assert!(Baseline::parse("{}").is_none());
        assert!(Baseline::parse(r#"{"scope":[],"env":{},"metrics":{"a":"x"}}"#).is_none());
        assert!(Baseline::parse(r#"{"scope":[1],"env":{},"metrics":{}}"#).is_none());
    }

    #[test]
    fn diff_names_every_kind_of_drift() {
        let mk = |pairs: &[(&str, u64)]| Baseline {
            scope: Vec::new(),
            env: BTreeMap::new(),
            metrics: pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        };
        let base = mk(&[("counter:a", 1), ("counter:b", 2), ("gauge:gone", 3)]);
        let cur = mk(&[("counter:a", 1), ("counter:b", 5), ("hist:new.count", 4)]);
        let drifts = base.diff(&cur);
        assert_eq!(drifts.len(), 3);
        let find = |m: &str| drifts.iter().find(|d| d.metric == m).unwrap();
        assert_eq!(find("counter:b").current, Some(5));
        assert_eq!(find("gauge:gone").current, None);
        assert_eq!(find("hist:new.count").baseline, None);
        assert!(find("counter:b")
            .to_string()
            .contains("baseline 2 -> current 5"));
        assert!(base.diff(&base.clone()).is_empty());
    }

    #[test]
    fn apply_env_restores_the_recorded_shape() {
        let mut b = Baseline {
            scope: Vec::new(),
            env: BTreeMap::new(),
            metrics: BTreeMap::new(),
        };
        b.env.insert("PDS_E14_TOKENS".into(), "48".into());
        b.apply_env();
        assert_eq!(std::env::var("PDS_E14_TOKENS").as_deref(), Ok("48"));
        // An unrecorded knob is cleared, not inherited.
        assert!(std::env::var("PDS_E14_LATENCY_US").is_err());
        std::env::remove_var("PDS_E14_TOKENS");
    }
}

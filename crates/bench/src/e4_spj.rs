//! E4 — pipelined SPJ with Tselect/Tjoin on the TPC-D-like query.
//!
//! The slide's execution plan: two Tselect indexes (CUS.Mktsegment,
//! SUP.Name) produce *sorted rowids* of the LINEITEM root, merged in
//! pipeline, dereferenced through the Tjoin. We measure page I/Os of the
//! climbing-index plan against the index-free baseline across scale
//! factors.

use pds_db::climbing::{execute_spj, execute_spj_naive, TjoinIndex, TselectIndex};
use pds_db::tpcd::{TpcdConfig, TpcdData};
use pds_db::Value;
use pds_flash::{Flash, FlashGeometry};
use pds_mcu::RamBudget;
use pds_obs::rng::SeedableRng;
use pds_obs::rng::StdRng;

use crate::table::Table;

/// One measured scale point.
pub struct E4Point {
    /// Lineitem rows.
    pub lineitems: u32,
    /// Page reads of the climbing-index plan.
    pub climbing_ios: u64,
    /// Page reads of the naive plan.
    pub naive_ios: u64,
    /// Result rows (identical for both plans).
    pub results: usize,
    /// One-time index build I/Os (reads + programs).
    pub build_ios: u64,
}

/// Measure one scale factor.
pub fn measure(sf: u32) -> E4Point {
    let flash = Flash::new(FlashGeometry::new(2048, 64, 16384));
    let ram = RamBudget::new(128 * 1024);
    let mut rng = StdRng::seed_from_u64(23);
    let cfg = TpcdConfig::scale(sf);
    let data = TpcdData::generate(&flash, &cfg, &mut rng).unwrap();
    let tree = data.schema_tree().unwrap();
    let tables = data.tables();

    flash.reset_stats();
    let tjoin = TjoinIndex::build(&flash, &tree, &tables).unwrap();
    let seg = TselectIndex::build(&flash, &ram, &tree, &tables, "CUSTOMER", "mktsegment").unwrap();
    let sup = TselectIndex::build(&flash, &ram, &tree, &tables, "SUPPLIER", "name").unwrap();
    let b = flash.stats();
    let build_ios = b.page_reads + b.page_programs;

    flash.reset_stats();
    let fast = execute_spj(
        &tree,
        &tables,
        &tjoin,
        &[
            (&seg, Value::str("HOUSEHOLD")),
            (&sup, Value::str("SUPPLIER-1")),
        ],
    )
    .unwrap();
    let climbing_ios = flash.stats().page_reads;

    flash.reset_stats();
    let cust = tree.table_index("CUSTOMER").unwrap();
    let supp = tree.table_index("SUPPLIER").unwrap();
    let naive = execute_spj_naive(
        &tree,
        &tables,
        &[
            (cust, 3, Value::str("HOUSEHOLD")),
            (supp, 1, Value::str("SUPPLIER-1")),
        ],
    )
    .unwrap();
    let naive_ios = flash.stats().page_reads;
    assert_eq!(fast, naive, "plans must agree");

    E4Point {
        lineitems: cfg.num_lineitems(),
        climbing_ios,
        naive_ios,
        results: fast.len(),
        build_ios,
    }
}

/// Regenerate the E4 table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E4 — SPJ: Tselect/Tjoin pipeline vs index-free baseline (TPC-D-like query)",
        &[
            "lineitems",
            "climbing IOs",
            "naive IOs",
            "speedup",
            "results",
            "index build IOs",
        ],
    );
    for sf in [2u32, 8, 20] {
        let p = measure(sf);
        t.row(vec![
            p.lineitems.to_string(),
            p.climbing_ios.to_string(),
            p.naive_ios.to_string(),
            format!("{:.1}x", p.naive_ios as f64 / p.climbing_ios.max(1) as f64),
            p.results.to_string(),
            p.build_ios.to_string(),
        ]);
    }
    t.note("paper shape: the pipeline plan touches only index pages + matching tuples,");
    t.note("so its cost tracks the result size while the baseline tracks the database size");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn climbing_plan_wins_and_matches() {
        let p = measure(2);
        assert!(p.climbing_ios < p.naive_ios);
        assert!(p.results > 0);
    }
}

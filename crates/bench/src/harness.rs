//! A minimal, dependency-free benchmark harness with a Criterion-shaped
//! API.
//!
//! The experiment benches (`benches/e*.rs`) were written against the
//! `criterion` crate. To keep the workspace buildable offline (no
//! registry access, no lockfile pinning) the external dependency is
//! replaced by this shim: same names, same call shapes
//! (`benchmark_group` / `sample_size` / `throughput` / `bench_function`
//! / `iter` / `iter_batched` / `criterion_group!` / `criterion_main!`),
//! but a deliberately simple measurement loop — calibrate an iteration
//! count per sample, take `sample_size` wall-clock samples, report
//! median and spread. No statistics beyond that: the repo's benches
//! compare orders of magnitude (17 vs 640 IOs, ×10 plan ladders), not
//! single-digit percents.

use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Opaque-value helper re-exported under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// Per-iteration work declared by a bench, used to print rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes its setup (accepted for API
/// compatibility; the shim always times the routine alone).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup before every routine call.
    PerIteration,
}

/// Target wall-clock per sample; keeps full suites in seconds, not
/// minutes, while still amortizing timer overhead.
const SAMPLE_TARGET: Duration = Duration::from_millis(8);

/// Entry point handed to each bench function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related measurements.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== {name} ==");
        BenchmarkGroup {
            sample_size: 20,
            throughput: None,
        }
    }
}

/// A group of benches sharing configuration.
pub struct BenchmarkGroup {
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Number of timed samples per bench (min 5).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Declare per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure one closure and print its timing line.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.as_ref();
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Calibration: grow the per-sample iteration count until one
        // sample costs ~SAMPLE_TARGET.
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed >= SAMPLE_TARGET || b.iters >= 1 << 20 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                16
            } else {
                (SAMPLE_TARGET.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 16) as u64
            };
            b.iters = (b.iters * grow).min(1 << 20);
        }
        let mut samples_ns: Vec<u128> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() / u128::from(b.iters));
        }
        samples_ns.sort_unstable();
        let median = samples_ns[samples_ns.len() / 2];
        let min = samples_ns[0];
        let max = samples_ns[samples_ns.len() - 1];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > 0 => {
                format!("  ({:.1} Kelem/s)", n as f64 / median as f64 * 1e6)
            }
            Some(Throughput::Bytes(n)) if median > 0 => {
                format!("  ({:.1} MB/s)", n as f64 / median as f64 * 1e3)
            }
            _ => String::new(),
        };
        println!(
            "{id:<28} {:>12}/iter  [{} .. {}]{rate}",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max)
        );
        self
    }

    /// End the group (stats were already printed per bench).
    pub fn finish(&mut self) {}
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Timing handle passed to the closure under measurement.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// Collect bench functions into a runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("harness_selftest");
        g.sample_size(5);
        let mut calls = 0u64;
        g.bench_function("count_calls", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        g.finish();
        assert!(calls > 0, "routine must have been driven");
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("harness_selftest_batched");
        g.sample_size(5);
        g.throughput(Throughput::Elements(3));
        g.bench_function("sum_fresh_vec", |b| {
            b.iter_batched(
                || vec![1u64, 2, 3],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}

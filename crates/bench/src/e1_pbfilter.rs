//! E1 — "Summary Scan (17 IOs) vs Table scan (640 IOs)".
//!
//! The slide's PBFilter example: looking up `CUSTOMER.CITY = 'Lyon'`
//! via the Bloom-filter summary log costs a small fraction of scanning
//! the table. We rebuild the exact scenario — a CUSTOMER table sized in
//! flash pages, a selective city predicate — and report full-scan vs
//! summary-scan page I/Os across table sizes and selectivities.

use pds_db::value::{ColumnType, Schema};
use pds_db::{PBFilter, Table as DbTable, Value};
use pds_flash::{Flash, FlashGeometry};

use crate::table::Table;

/// Build a CUSTOMER table of `rows` rows with `cities` distinct cities.
pub fn build_customer(flash: &Flash, rows: u32, cities: u32) -> (DbTable, PBFilter) {
    let schema = Schema::new(&[
        ("id", ColumnType::U64),
        ("name", ColumnType::Str),
        ("city", ColumnType::Str),
        ("segment", ColumnType::Str),
    ]);
    let mut table = DbTable::new(flash, "CUSTOMER", schema);
    let mut index = PBFilter::new(flash);
    for i in 0..rows {
        let city = format!("city-{:04}", i % cities);
        table
            .insert(&vec![
                Value::U64(i as u64),
                Value::Str(format!("Customer-{i}")),
                Value::Str(city.clone()),
                Value::str(if i % 2 == 0 { "HOUSEHOLD" } else { "AUTO" }),
            ])
            .unwrap();
        index.insert(city.as_bytes(), i).unwrap();
    }
    table.flush().unwrap();
    index.flush().unwrap();
    (table, index)
}

/// Measured costs of one configuration.
pub struct E1Point {
    /// Rows in the table.
    pub rows: u32,
    /// Table data pages.
    pub table_pages: u32,
    /// Page reads of the full scan.
    pub scan_ios: u64,
    /// Page reads of the PBFilter lookup (summary + probes).
    pub pbfilter_ios: u64,
    /// Matching rows.
    pub matches: usize,
}

/// Measure one configuration.
pub fn measure(rows: u32, cities: u32) -> E1Point {
    let flash = Flash::new(FlashGeometry::new(2048, 64, 4096));
    let (table, index) = build_customer(&flash, rows, cities);
    let probe = format!("city-{:04}", cities / 2);

    flash.reset_stats();
    let mut scan_matches = 0usize;
    table
        .scan(|_, row| {
            if row[2] == Value::Str(probe.clone()) {
                scan_matches += 1;
            }
        })
        .unwrap();
    let scan_ios = flash.stats().page_reads;

    flash.reset_stats();
    let hits = index.lookup(probe.as_bytes()).unwrap();
    let pbfilter_ios = flash.stats().page_reads;
    assert_eq!(hits.len(), scan_matches, "index must equal the scan");

    E1Point {
        rows,
        table_pages: table.num_pages(),
        scan_ios,
        pbfilter_ios,
        matches: scan_matches,
    }
}

/// Regenerate the E1 table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E1 — PBFilter summary scan vs table scan (slide: 17 vs 640 IOs)",
        &[
            "rows",
            "table pages",
            "full-scan IOs",
            "PBFilter IOs",
            "speedup",
            "matches",
        ],
    );
    for (rows, cities) in [(10_000u32, 500u32), (38_000, 1000), (80_000, 2000)] {
        let p = measure(rows, cities);
        t.row(vec![
            p.rows.to_string(),
            p.table_pages.to_string(),
            p.scan_ios.to_string(),
            p.pbfilter_ios.to_string(),
            format!("{:.1}x", p.scan_ios as f64 / p.pbfilter_ios as f64),
            p.matches.to_string(),
        ]);
    }
    t.note("paper shape: summary scan beats the table scan by >10x and grows with table size");
    t.note("the 38k-row point reproduces the slide's 640-page table");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds_at_small_scale() {
        let p = measure(5_000, 250);
        assert!(
            p.pbfilter_ios * 3 < p.scan_ios,
            "{} vs {}",
            p.pbfilter_ios,
            p.scan_ios
        );
        assert!(p.matches > 0);
    }
}

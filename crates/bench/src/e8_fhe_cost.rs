//! E8 — "the cost to have good security [with homomorphic encryption] is
//! (incredibly) high".
//!
//! The tutorial's argument for trusted hardware: computing a simple
//! aggregate with homomorphic encryption costs orders of magnitude more
//! than letting cheap secure tokens decrypt-and-add. We measure SUM over
//! N values three ways — plaintext, token-style symmetric crypto, and
//! Paillier at increasing modulus sizes — and report wall-clock ratios.

use pds_crypto::{Paillier, SymmetricKey};
use pds_obs::rng::StdRng;
use pds_obs::rng::{Rng, SeedableRng};
use std::time::Instant;

use crate::table::Table;

/// One measured approach.
pub struct E8Point {
    /// Approach label.
    pub approach: String,
    /// Values summed.
    pub n: usize,
    /// Wall-clock nanoseconds.
    pub elapsed_ns: u128,
    /// Result correct.
    pub correct: bool,
}

/// Measure SUM over `n` values for every approach.
pub fn measure(n: usize, seed: u64) -> Vec<E8Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1_000_000)).collect();
    let expected: u64 = values.iter().sum();
    let mut out = Vec::new();

    // Plaintext (the trusted-server fiction).
    let t0 = Instant::now();
    let mut s = 0u64;
    for &v in &values {
        s = std::hint::black_box(s + v);
    }
    out.push(E8Point {
        approach: "plaintext".into(),
        n,
        elapsed_ns: t0.elapsed().as_nanos().max(1),
        correct: s == expected,
    });

    // Token-based: symmetric encrypt at each source, decrypt-and-add in
    // one token (the secure-aggregation inner loop).
    let key = SymmetricKey::from_seed(b"e8");
    let cts: Vec<_> = values
        .iter()
        .map(|v| key.encrypt_prob(&v.to_le_bytes(), &mut rng))
        .collect();
    let t0 = Instant::now();
    let mut s = 0u64;
    for ct in &cts {
        let plain = key.decrypt(ct).unwrap();
        s += u64::from_le_bytes(plain[..8].try_into().unwrap());
    }
    out.push(E8Point {
        approach: "secure tokens (symmetric)".into(),
        n,
        elapsed_ns: t0.elapsed().as_nanos().max(1),
        correct: s == expected,
    });

    // Homomorphic: Paillier at two modulus sizes (encrypt + fold + one
    // decrypt — the whole pipeline the untrusted server would need).
    for bits in [512usize, 1024] {
        let (pk, sk) = Paillier::keygen(bits, &mut rng);
        let t0 = Instant::now();
        let mut acc = pk.neutral();
        for &v in &values {
            let ct = pk.encrypt_u64(v, &mut rng);
            acc = pk.add(&acc, &ct);
        }
        let s = sk.decrypt_u64(&acc);
        out.push(E8Point {
            approach: format!("Paillier-{bits}"),
            n,
            elapsed_ns: t0.elapsed().as_nanos().max(1),
            correct: s == expected,
        });
    }
    out
}

/// Regenerate the E8 table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E8 — homomorphic encryption vs secure tokens: SUM over N values",
        &[
            "N",
            "approach",
            "time (ms)",
            "vs plaintext",
            "vs tokens",
            "correct",
        ],
    );
    for n in [200usize] {
        let points = measure(n, 5);
        let base = points[0].elapsed_ns as f64;
        let tokens = points[1].elapsed_ns as f64;
        for p in &points {
            t.row(vec![
                p.n.to_string(),
                p.approach.clone(),
                format!("{:.3}", p.elapsed_ns as f64 / 1e6),
                format!("{:.0}x", p.elapsed_ns as f64 / base),
                format!("{:.1}x", p.elapsed_ns as f64 / tokens),
                if p.correct { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    t.note("paper shape: homomorphic encryption is orders of magnitude above symmetric");
    t.note("token crypto, and the gap widens with the security parameter — the tutorial's");
    t.note("case for putting tangible trust (secure hardware) into the architecture");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paillier_is_much_slower_than_tokens_and_all_correct() {
        let points = measure(30, 1);
        assert!(points.iter().all(|p| p.correct));
        let tokens = points[1].elapsed_ns;
        let paillier512 = points[2].elapsed_ns;
        assert!(
            paillier512 > tokens * 10,
            "paillier {paillier512} vs tokens {tokens}"
        );
    }
}

//! E5 — "data structures and strategies must avoid random writes".
//!
//! The slide's NAND cost model: pages are erased before write, erase
//! works on blocks, so an *in-place* index pays a read-erase-reprogram
//! of a whole block per update, while the tutorial's log structures pay
//! a fraction of one sequential page program per insertion. We build
//! both on the same simulated chip and report programs, erases, write
//! amplification and simulated time.

use pds_db::PBFilter;
use pds_flash::{BlockId, Flash, FlashGeometry, IoStats};

use crate::table::Table;

/// A deliberately classical, update-in-place sorted index on NAND: keys
/// live sorted across blocks; every insertion rewrites its whole block
/// (read pages, erase, reprogram) — what a textbook B-tree does when
/// ported naively to flash.
pub struct InPlaceIndex {
    flash: Flash,
    /// Sorted runs, one per block: (block, keys).
    blocks: Vec<(BlockId, Vec<u32>)>,
    keys_per_block: usize,
}

impl InPlaceIndex {
    /// Create with one empty block.
    pub fn new(flash: &Flash) -> Self {
        let geo = flash.geometry();
        let keys_per_page = geo.page_size / 4;
        let first = flash.alloc_block().unwrap();
        InPlaceIndex {
            flash: flash.clone(),
            blocks: vec![(first, Vec::new())],
            keys_per_block: keys_per_page * geo.pages_per_block,
        }
    }

    fn rewrite_block(&self, bid: BlockId, keys: &[u32]) {
        let geo = self.flash.geometry();
        // Read-modify-write cycle: read the pages that held data, erase,
        // reprogram the new content sequentially.
        let used_pages = (keys.len() * 4).div_ceil(geo.page_size).max(1);
        let mut buf = vec![0u8; geo.page_size];
        for p in 0..used_pages.min(geo.pages_per_block) {
            self.flash
                .read_page(geo.page_in_block(bid, p), &mut buf)
                .unwrap();
        }
        self.flash.erase_block(bid).unwrap();
        let keys_per_page = geo.page_size / 4;
        for (p, chunk) in keys.chunks(keys_per_page).enumerate() {
            let mut page = vec![0xFFu8; geo.page_size];
            for (i, k) in chunk.iter().enumerate() {
                page[i * 4..i * 4 + 4].copy_from_slice(&k.to_le_bytes());
            }
            self.flash
                .program_page(geo.page_in_block(bid, p), &page)
                .unwrap();
        }
    }

    /// Insert one key, rewriting the target block in place (splitting a
    /// full block first).
    pub fn insert(&mut self, key: u32) {
        // Find the block whose range covers the key.
        let idx = self
            .blocks
            .partition_point(|(_, keys)| keys.last().is_some_and(|&l| l < key))
            .min(self.blocks.len() - 1);
        if self.blocks[idx].1.len() >= self.keys_per_block {
            // Split: half the keys move to a fresh block (both rewritten).
            let (bid, keys) = &mut self.blocks[idx];
            let right_keys = keys.split_off(keys.len() / 2);
            let left_bid = *bid;
            let left_keys = keys.clone();
            let right_bid = self.flash.alloc_block().unwrap();
            self.rewrite_block(left_bid, &left_keys);
            self.rewrite_block(right_bid, &right_keys);
            self.blocks.insert(idx + 1, (right_bid, right_keys));
        }
        let idx = self
            .blocks
            .partition_point(|(_, keys)| keys.last().is_some_and(|&l| l < key))
            .min(self.blocks.len() - 1);
        let (bid, keys) = &mut self.blocks[idx];
        let pos = keys.partition_point(|&k| k < key);
        keys.insert(pos, key);
        let bid = *bid;
        let keys = self.blocks[idx].1.clone();
        self.rewrite_block(bid, &keys);
    }
}

/// One measured configuration.
pub struct E5Point {
    /// Keys inserted.
    pub inserts: u32,
    /// Stats of the log-structured insert stream.
    pub log_stats: IoStats,
    /// Stats of the in-place insert stream.
    pub inplace_stats: IoStats,
    /// Simulated time ratio (in-place / log).
    pub time_ratio: f64,
    /// Worst per-block erase count, log structure.
    pub log_wear: u64,
    /// Worst per-block erase count, in-place structure.
    pub inplace_wear: u64,
}

/// Insert `n` uniformly-shuffled keys into both structures.
pub fn measure(n: u32) -> E5Point {
    let geo = FlashGeometry::new(2048, 64, 4096);
    // Log-structured: PBFilter.
    let f1 = Flash::new(geo);
    let mut pbf = PBFilter::new(&f1);
    for i in 0..n {
        let key = (i.wrapping_mul(2654435761)) % n; // pseudo-shuffle
        pbf.insert(&key.to_be_bytes(), i).unwrap();
    }
    pbf.flush().unwrap();
    let log_stats = f1.stats();

    // In-place baseline.
    let f2 = Flash::new(geo);
    let mut inplace = InPlaceIndex::new(&f2);
    for i in 0..n {
        let key = (i.wrapping_mul(2654435761)) % n;
        inplace.insert(key);
    }
    let inplace_stats = f2.stats();

    let cost = pds_flash::CostModel::default();
    E5Point {
        inserts: n,
        log_stats,
        inplace_stats,
        time_ratio: inplace_stats.time_ns(&cost) as f64 / log_stats.time_ns(&cost).max(1) as f64,
        log_wear: f1.max_erase_count(),
        inplace_wear: f2.max_erase_count(),
    }
}

/// Regenerate the E5 table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E5 — random-write avoidance: log-structured vs in-place on NAND",
        &[
            "inserts",
            "structure",
            "page programs",
            "block erases",
            "max wear",
            "random programs",
            "sim time (ms)",
        ],
    );
    let cost = pds_flash::CostModel::default();
    for n in [2_000u32, 10_000] {
        let p = measure(n);
        for (name, s, wear) in [
            ("log (PBFilter)", p.log_stats, p.log_wear),
            ("in-place B-tree", p.inplace_stats, p.inplace_wear),
        ] {
            t.row(vec![
                p.inserts.to_string(),
                name.to_string(),
                s.page_programs.to_string(),
                s.block_erases.to_string(),
                wear.to_string(),
                s.non_sequential_programs.to_string(),
                format!("{:.2}", s.time_ns(&cost) as f64 / 1e6),
            ]);
        }
        t.note(&format!(
            "n={}: in-place costs {:.0}x the simulated time of the log structure",
            n, p.time_ratio
        ));
    }
    t.note("paper shape: log structures avoid random writes *by construction*; in-place");
    t.note("structures pay a block read-erase-reprogram cycle per update");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_structure_never_erases_inplace_always_does() {
        let p = measure(1_000);
        assert_eq!(p.log_stats.block_erases, 0);
        assert!(p.inplace_stats.block_erases as u32 >= p.inserts / 2);
        assert!(p.time_ratio > 50.0, "ratio {}", p.time_ratio);
    }

    #[test]
    fn inplace_index_is_actually_sorted() {
        let f = Flash::new(FlashGeometry::new(512, 8, 512));
        let mut idx = InPlaceIndex::new(&f);
        for k in [5u32, 1, 9, 3, 7, 2, 8, 0, 6, 4] {
            idx.insert(k);
        }
        let all: Vec<u32> = idx.blocks.iter().flat_map(|(_, ks)| ks.clone()).collect();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }
}

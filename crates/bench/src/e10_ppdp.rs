//! E10 — PPDP with tokens (MetaP): k-anonymity quality vs k.
//!
//! The release quality metrics of the anonymization literature —
//! discernibility penalty and average-class-size ratio — as the privacy
//! parameter k grows, plus the achieved l-diversity, over encrypted
//! records that only tokens ever see in the clear.

use pds_crypto::SymmetricKey;
use pds_global::ppdp::{
    encrypt_records, info_loss, publish_anonymized, synthetic_records, InfoLoss,
};
use pds_obs::rng::SeedableRng;
use pds_obs::rng::StdRng;

use crate::table::Table;

/// One measured k.
pub struct E10Point {
    /// Privacy parameter.
    pub k: usize,
    /// Equivalence classes in the release.
    pub classes: usize,
    /// Quality metrics.
    pub loss: InfoLoss,
}

/// Anonymize `n` synthetic records (through the full encrypt → token →
/// release pipeline) for each k.
pub fn measure(n: usize, ks: &[usize], seed: u64) -> Vec<E10Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    let key = SymmetricKey::from_seed(b"e10");
    let records = synthetic_records(n, &mut rng);
    let encrypted = encrypt_records(&records, &key, &mut rng);
    ks.iter()
        .map(|&k| {
            let classes = publish_anonymized(&encrypted, &key, k).unwrap();
            E10Point {
                k,
                classes: classes.len(),
                loss: info_loss(&classes, k),
            }
        })
        .collect()
}

/// Regenerate the E10 table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E10 — MetaP-style k-anonymity over 5000 encrypted records",
        &[
            "k",
            "classes",
            "min class",
            "C_avg",
            "discernibility",
            "achieved l",
        ],
    );
    for p in measure(5000, &[2, 5, 10, 25, 50, 100], 4) {
        t.row(vec![
            p.k.to_string(),
            p.classes.to_string(),
            p.loss.min_class.to_string(),
            format!("{:.2}", p.loss.avg_class_ratio),
            p.loss.discernibility.to_string(),
            p.loss.min_l.to_string(),
        ]);
    }
    t.note("paper shape: every class ≥ k (the guarantee), discernibility grows with k");
    t.note("(the privacy/utility trade-off), C_avg stays near 1 (Mondrian is near-optimal)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarantee_holds_and_loss_is_monotone() {
        let points = measure(1000, &[2, 10, 50], 8);
        for p in &points {
            assert!(p.loss.min_class >= p.k, "k={}", p.k);
            assert!(p.loss.avg_class_ratio < 2.5, "Mondrian near-optimality");
        }
        assert!(points[2].loss.discernibility > points[0].loss.discernibility);
        assert!(points[2].classes < points[0].classes);
    }
}

//! E6 — the [TNP14\] protocol family trade-offs.
//!
//! The tutorial's "solutions vary depending on which kind of encryption
//! is used, how the SSI constructs the partitions, and what information
//! is revealed to the SSI". One table: per protocol, token work, rounds,
//! SSI traffic, and the SSI-observed frequency signal — all exact.

use pds_global::histogram::{histogram_based, BucketMap};
use pds_global::noise::{noise_based, NoiseStrategy};
use pds_global::secure_agg::{secure_aggregation, OnTamper};
use pds_global::{plaintext_groupby, GroupByQuery, Population, ProtocolStats, Ssi};
use pds_obs::rng::SeedableRng;
use pds_obs::rng::StdRng;

use crate::table::Table;

/// One protocol's measured run.
pub struct E6Point {
    /// Protocol label.
    pub protocol: &'static str,
    /// Cost counters.
    pub stats: ProtocolStats,
    /// Equality classes the SSI observed.
    pub classes: usize,
    /// Frequency signal visible to the SSI.
    pub signal: f64,
    /// Result equals the plaintext reference.
    pub exact: bool,
}

/// Run all protocols over one synthetic population of `n` tokens.
pub fn measure(n: usize, seed: u64) -> Vec<E6Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    let q = GroupByQuery::bank_by_category();
    let mut pop = Population::synthetic(n, &q.domain, &mut rng).unwrap();
    let truth = plaintext_groupby(&mut pop, &q).unwrap();
    let mut out = Vec::new();

    let ssi = Ssi::honest(seed);
    let (r, stats) = secure_aggregation(&mut pop, &q, &ssi, 32, OnTamper::Abort, &mut rng).unwrap();
    out.push(E6Point {
        protocol: "secure-agg",
        stats,
        classes: ssi.leakage().equality_class_sizes.len(),
        signal: ssi.leakage().frequency_signal(),
        exact: r == truth,
    });

    for (strategy, label) in [
        (NoiseStrategy::Random { fakes_per_token: 0 }, "det-no-noise"),
        (NoiseStrategy::Random { fakes_per_token: 4 }, "noise-random"),
        (NoiseStrategy::Complementary, "noise-compl"),
    ] {
        let ssi = Ssi::honest(seed + 1);
        let (r, stats) = noise_based(&mut pop, &q, &ssi, strategy, &mut rng).unwrap();
        out.push(E6Point {
            protocol: label,
            stats,
            classes: ssi.leakage().equality_class_sizes.len(),
            signal: ssi.leakage().frequency_signal(),
            exact: r == truth,
        });
    }

    for buckets in [2u32, 6] {
        let map = BucketMap::equi_width(&q.domain, buckets);
        let ssi = Ssi::honest(seed + 2);
        let (r, stats) = histogram_based(&mut pop, &q, &ssi, &map, &mut rng).unwrap();
        out.push(E6Point {
            protocol: if buckets == 2 {
                "histogram-2"
            } else {
                "histogram-6"
            },
            stats,
            classes: ssi.leakage().equality_class_sizes.len(),
            signal: ssi.leakage().frequency_signal(),
            exact: r == truth,
        });
    }
    out
}

/// Regenerate the E6 table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E6 — [TNP14] protocol family: cost and leakage (exact results everywhere)",
        &[
            "N",
            "protocol",
            "token tuples",
            "crypto ops",
            "rounds",
            "SSI bytes",
            "fakes",
            "classes seen",
            "freq signal",
            "exact",
        ],
    );
    for n in [100usize, 400] {
        for p in measure(n, n as u64) {
            t.row(vec![
                n.to_string(),
                p.protocol.to_string(),
                p.stats.token_tuples.to_string(),
                p.stats.token_crypto_ops.to_string(),
                p.stats.rounds.to_string(),
                p.stats.ssi_bytes.to_string(),
                p.stats.fake_tuples.to_string(),
                p.classes.to_string(),
                format!("{:.3}", p.signal),
                if p.exact { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    t.note("paper shape: secure-agg leaks nothing but needs a reduction tree (rounds);");
    t.note("det-encryption needs one round per group but leaks the frequency skew,");
    t.note("which random noise attenuates and complementary noise eliminates;");
    t.note("histograms interpolate between 'one big transfer' and det grouping");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_exact_and_leakage_ordering_holds() {
        let points = measure(200, 7);
        assert!(points.iter().all(|p| p.exact));
        let by = |name: &str| points.iter().find(|p| p.protocol == name).unwrap();
        assert_eq!(by("secure-agg").classes, 0);
        assert!(by("det-no-noise").signal > by("noise-compl").signal);
        assert!(by("secure-agg").stats.rounds > by("det-no-noise").stats.rounds);
    }
}

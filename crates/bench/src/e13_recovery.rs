//! E13 — crash recovery: power loss mid-ingestion, measured end to end.
//!
//! The tutorial's secure tokens are *portable*: power is whatever USB
//! port or NFC field the token happens to be in, and disconnection is a
//! normal event, not a failure. The storage stack therefore has to treat
//! power loss as an ordinary input. This experiment cuts the power after
//! a seeded number of page programs while a PDS ingests across all three
//! collections, reboots the token (flash controller state rebuilt by
//! cell scan, RAM lost), runs [`pds_core::Pds::reopen`], and measures
//! what recovery found: durable records back, losses confined to the
//! undurable tail, torn pages detected by the page CRC and discarded.

use pds_core::{AccessContext, Pds, Purpose};
use pds_flash::FaultPlan;
use pds_obs::rng::{Rng, SeedableRng, StdRng};

use crate::table::Table;

/// Outcome of one seeded crash.
pub struct E13Point {
    /// Page programs before the cut.
    pub cut_after: u64,
    /// Days fully ingested before the crash (3 records each).
    pub ingested_days: u64,
    /// Documents intact after recovery.
    pub docs_recovered: u32,
    /// Documents lost to the crash.
    pub docs_lost: u32,
    /// Rows lost, summed over the three tables.
    pub rows_lost: u32,
    /// Pages scanned by log recovery.
    pub pages_scanned: u64,
    /// Torn pages the page CRC caught and recovery discarded.
    pub torn_pages: u64,
    /// Whether the recovered PDS answered a search over the survivors.
    pub search_ok: bool,
}

/// Run one seeded crash-and-recover cycle. `durable_days` days are
/// synced before faults are armed, so recovery has a guaranteed floor.
pub fn measure(seed: u64, durable_days: u64) -> E13Point {
    let reg = pds_obs::metrics::global();
    let scanned0 = reg.counter("recovery.pages_scanned").get();
    let torn0 = reg.counter("recovery.torn_pages_discarded").get();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut pds = Pds::for_tests(seed, "alice").expect("pds");
    let ingest = |pds: &mut Pds, day: u64| -> Result<(), pds_core::PdsError> {
        pds.ingest_email(
            day,
            "dr.martin",
            &format!("subject {day}"),
            &format!("marker m{} level {}", day % 7, day % 13),
        )?;
        pds.ingest_health(day, "blood-pressure", 110 + day % 30, "routine")?;
        pds.ingest_bank(day, "groceries", 1_000 + day, "shop-1")?;
        Ok(())
    };
    for day in 0..durable_days {
        ingest(&mut pds, day).expect("durable prefix");
    }
    pds.sync().expect("sync");

    let cut_after = rng.gen_range(5u64..80);
    pds.token()
        .flash()
        .inject_faults(FaultPlan::new(seed).power_loss_after(cut_after));
    let mut day = durable_days;
    while day < durable_days + 500 {
        if ingest(&mut pds, day).is_err() {
            break;
        }
        day += 1;
    }

    let (mut rec, report) = pds.reopen().expect("reopen");
    let me = AccessContext::new("alice", Purpose::PersonalUse);
    let search_ok = rec
        .search(&me, &["marker"], 50)
        .is_ok_and(|hits| hits.len() as u64 >= durable_days);
    E13Point {
        cut_after,
        ingested_days: day,
        docs_recovered: report.docs_recovered,
        docs_lost: report.docs_lost,
        rows_lost: report.rows_lost.iter().map(|(_, l)| l).sum(),
        pages_scanned: reg.counter("recovery.pages_scanned").get() - scanned0,
        torn_pages: reg.counter("recovery.torn_pages_discarded").get() - torn0,
        search_ok,
    }
}

/// Regenerate the E13 table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E13 — crash recovery: seeded power loss mid-ingestion",
        &[
            "seed",
            "cut after (programs)",
            "days ingested",
            "docs recovered",
            "docs lost",
            "rows lost",
            "pages scanned",
            "torn pages",
            "search after",
        ],
    );
    let durable_days = 10u64;
    let mut total_lost = 0u32;
    for seed in 0..8u64 {
        let p = measure(0xE13_0000 + seed, durable_days);
        total_lost += p.docs_lost + p.rows_lost;
        t.row(vec![
            seed.to_string(),
            p.cut_after.to_string(),
            p.ingested_days.to_string(),
            p.docs_recovered.to_string(),
            p.docs_lost.to_string(),
            p.rows_lost.to_string(),
            p.pages_scanned.to_string(),
            p.torn_pages.to_string(),
            if p.search_ok { "ok" } else { "FAIL" }.to_string(),
        ]);
    }
    t.note(&format!(
        "every loss is confined to the undurable tail ({total_lost} records \
         total across 8 crashes); the synced prefix always survives"
    ));
    t.note("torn pages are caught by the per-page CRC and discarded, never");
    t.note("decoded as data; the inverted index is re-derived from the documents");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durable_prefix_always_survives() {
        for seed in 0..3u64 {
            let p = measure(0xE13_7E57 + seed, 8);
            assert!(p.docs_recovered >= 16, "seed {seed}: 2 docs/day durable");
            assert!(p.search_ok, "seed {seed}");
        }
    }
}

//! Regenerate every experiment table of EXPERIMENTS.md in one run.
//!
//! Usage:
//!   `cargo run --release -p pds-bench --bin report [FLAGS] [e1 e2 …]`
//! (no experiment ids = all experiments). Flags:
//!
//! * `--metrics` — dump the process-wide `pds-obs` registry as JSONL
//!   after the tables: every flash IO, RAM high-water mark, policy
//!   decision, and protocol round the experiments generated.
//! * `--baseline FILE` — after running the selected experiments, write
//!   their deterministic metrics (plus scope and env knobs) to `FILE`.
//!   Commit the file to pin the repo's cost envelope.
//! * `--check FILE` — replay the scope and env knobs recorded in
//!   `FILE`, then compare the fresh deterministic metrics against it.
//!   Exits 1 naming every drifted metric; CI runs this on every push.
//! * `--fleet-health` — after the experiments, snapshot the registry as
//!   a metrics delta, evaluate the standard fleet SLO set against it,
//!   and print the `fleet status` rendering plus its JSON line. Exits 1
//!   when any rule fails.
//! * `--forensics-json FILE` — crash one seeded token mid-round, reopen
//!   it, and write its [`ForensicsReport`](pds_core::ForensicsReport)
//!   JSON to `FILE`; CI uploads the file as the post-mortem artifact.

use pds_bench::baseline::{self, Baseline};
use pds_bench::*;

/// Pop `flag FILE` out of `args`; exit 2 if the value is missing.
fn take_opt(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    args.remove(i);
    if i < args.len() {
        Some(args.remove(i))
    } else {
        eprintln!("{flag} needs a file argument");
        std::process::exit(2);
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let metrics = args.iter().any(|a| a == "--metrics");
    args.retain(|a| a != "--metrics");
    let fleet_health = args.iter().any(|a| a == "--fleet-health");
    args.retain(|a| a != "--fleet-health");
    let write_path = take_opt(&mut args, "--baseline");
    let check_path = take_opt(&mut args, "--check");
    let forensics_path = take_opt(&mut args, "--forensics-json");

    let checked: Option<Baseline> = check_path.map(|p| {
        let text = std::fs::read_to_string(&p).unwrap_or_else(|e| {
            eprintln!("--check: cannot read {p}: {e}");
            std::process::exit(2);
        });
        Baseline::parse(&text).unwrap_or_else(|| {
            eprintln!("--check: {p} is not a baseline document");
            std::process::exit(2);
        })
    });
    // A check replays the recorded shape: same experiments, same env
    // knobs — a drift must mean the *code* changed, not the invocation.
    let scope: Vec<String> = match &checked {
        Some(b) => {
            b.apply_env();
            b.scope.clone()
        }
        None => args.clone(),
    };

    let want = |id: &str| scope.is_empty() || scope.iter().any(|a| a == id);
    type Exp = (&'static str, fn() -> Table);
    let experiments: Vec<Exp> = vec![
        ("e1", e1_pbfilter::run),
        ("e2", e2_reorg::run),
        ("e3", e3_search::run),
        ("e4", e4_spj::run),
        ("e5", e5_random_writes::run),
        ("e6", e6_protocols::run),
        ("e7", e7_toolkit::run),
        ("e8", e8_fhe_cost::run),
        ("e9", e9_detection::run),
        ("e10", e10_ppdp::run),
        ("e11", e11_sync::run),
        ("e12", e12_folkis::run),
        ("e13", e13_recovery::run),
        ("e14", e14_fleet::run),
        ("e15", e15_fleet_trace::run),
        ("e16", e16_telemetry::run),
        ("e17", e17_sched::run),
        ("e18", e18_mvcc::run),
        ("e19", e19_crash::run),
        ("a1", ablations::a1_bloom_budget),
        ("a2", ablations::a2_partition_size),
        ("a3", ablations::a3_codesign),
        ("a4", ablations::a4_extensions),
    ];
    for (id, run) in experiments {
        if want(id) {
            let start = std::time::Instant::now();
            let table = run();
            println!("{table}");
            println!(
                "  [{id} regenerated in {:.1}s]\n",
                start.elapsed().as_secs_f64()
            );
        }
    }

    if metrics || fleet_health || write_path.is_some() || checked.is_some() {
        // Fold the static-analysis posture into the same registry dump:
        // lint.findings / lint.waivers / lint.files_scanned sit next to
        // the runtime counters, so one run captures both.
        if let Some(root) = std::env::current_dir()
            .ok()
            .and_then(|cwd| pds_lint::find_workspace_root(&cwd))
        {
            match pds_lint::run_workspace(&root) {
                Ok(report) => report.publish(),
                Err(e) => eprintln!("  [pds-lint skipped: {e}]"),
            }
        }
    }
    if metrics {
        println!("-- pds-obs registry (JSONL) --");
        print!("{}", pds_obs::metrics::global().export_jsonl());
    }
    // An overflowed event ring means the JSONL export above (and any
    // later one) is an *incomplete* view of the event stream — say so
    // loudly instead of letting a truncated export pass as complete.
    let dropped = pds_obs::metrics::global().events_dropped();
    if dropped > 0 {
        eprintln!(
            "WARNING: obs.events_dropped = {dropped} — the event ring overflowed; \
             the exported event stream is incomplete (raise the ring capacity \
             with Registry::set_event_capacity)"
        );
    }

    let mut unhealthy = false;
    if fleet_health {
        // The registry snapshot *is* a one-bucket rollup: the same
        // delta/merge vocabulary the in-band collector folds, so the
        // standard SLO set reads identically here and fleet-side.
        let rollup = pds_obs::metrics::global().snapshot_delta();
        let verdict = pds_fleet::HealthEngine::standard().evaluate(&rollup);
        println!("{}", verdict.render());
        println!("{}", verdict.to_json());
        unhealthy = !verdict.healthy;
    }

    if let Some(path) = forensics_path {
        let json = e19_crash::forensics_json();
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("--forensics-json: cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("forensics: wrote seeded post-mortem JSON to {path}");
    }
    if let Some(path) = write_path {
        let base = baseline::capture(&scope);
        if let Err(e) = std::fs::write(&path, base.to_json()) {
            eprintln!("--baseline: cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!(
            "baseline: wrote {} deterministic metrics to {path}",
            base.metrics.len()
        );
    }
    if let Some(base) = checked {
        let drifts = base.diff(&baseline::capture(&base.scope));
        if drifts.is_empty() {
            println!(
                "baseline check OK: {} deterministic metrics match",
                base.metrics.len()
            );
        } else {
            eprintln!("baseline check FAILED: {} metric(s) drifted", drifts.len());
            for d in &drifts {
                eprintln!("  {d}");
            }
            std::process::exit(1);
        }
    }
    if unhealthy {
        std::process::exit(1);
    }
}

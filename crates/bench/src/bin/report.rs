//! Regenerate every experiment table of EXPERIMENTS.md in one run.
//!
//! Usage: `cargo run --release -p pds-bench --bin report [--metrics] [e1 e2 …]`
//! (no experiment ids = all experiments). With `--metrics`, the
//! process-wide `pds-obs` registry is dumped as JSONL after the tables —
//! every flash IO, RAM high-water mark, policy decision, and protocol
//! round the experiments generated.

use pds_bench::*;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let metrics = args.iter().any(|a| a == "--metrics");
    args.retain(|a| a != "--metrics");
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a == id);
    type Exp = (&'static str, fn() -> Table);
    let experiments: Vec<Exp> = vec![
        ("e1", e1_pbfilter::run),
        ("e2", e2_reorg::run),
        ("e3", e3_search::run),
        ("e4", e4_spj::run),
        ("e5", e5_random_writes::run),
        ("e6", e6_protocols::run),
        ("e7", e7_toolkit::run),
        ("e8", e8_fhe_cost::run),
        ("e9", e9_detection::run),
        ("e10", e10_ppdp::run),
        ("e11", e11_sync::run),
        ("e12", e12_folkis::run),
        ("e13", e13_recovery::run),
        ("e14", e14_fleet::run),
        ("a1", ablations::a1_bloom_budget),
        ("a2", ablations::a2_partition_size),
        ("a3", ablations::a3_codesign),
        ("a4", ablations::a4_extensions),
    ];
    for (id, run) in experiments {
        if want(id) {
            let start = std::time::Instant::now();
            let table = run();
            println!("{table}");
            println!(
                "  [{id} regenerated in {:.1}s]\n",
                start.elapsed().as_secs_f64()
            );
        }
    }
    if metrics {
        // Fold the static-analysis posture into the same registry dump:
        // lint.findings / lint.waivers / lint.files_scanned sit next to
        // the runtime counters, so one `--metrics` run captures both.
        if let Some(root) = std::env::current_dir()
            .ok()
            .and_then(|cwd| pds_lint::find_workspace_root(&cwd))
        {
            match pds_lint::run_workspace(&root) {
                Ok(report) => report.publish(),
                Err(e) => eprintln!("  [pds-lint skipped: {e}]"),
            }
        }
        println!("-- pds-obs registry (JSONL) --");
        print!("{}", pds_obs::metrics::global().export_jsonl());
    }
}

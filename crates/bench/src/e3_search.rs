//! E3 — embedded search: pipeline RAM bound and exact top-N.
//!
//! The slide's claims: the classical algorithm needs "one container per
//! retrieved docid … too much!", while the chained-bucket engine merges
//! with **one RAM page per query keyword** and an N-slot heap, exactly.
//! We measure peak query RAM and page I/Os per keyword count, against
//! the naive accumulator count, plus the df-strategy ablation
//! (TwoPass vs RamDictionary).

use pds_flash::{Flash, FlashGeometry};
use pds_mcu::RamBudget;
use pds_obs::rng::SeedableRng;
use pds_obs::rng::StdRng;
use pds_search::gen::{generate_corpus, CorpusConfig};
use pds_search::{DfStrategy, NaiveSearch, SearchEngine};

use crate::table::Table;

/// One measured query configuration.
pub struct E3Point {
    /// Documents in the corpus.
    pub docs: usize,
    /// Query keywords.
    pub keywords: usize,
    /// Peak query RAM of the embedded engine (bytes).
    pub engine_ram: usize,
    /// Page reads of the query.
    pub engine_ios: u64,
    /// Accumulators the classical algorithm would allocate.
    pub naive_accumulators: usize,
    /// Top-10 identical to the oracle.
    pub exact: bool,
}

/// Build engine + oracle over a Zipf corpus.
pub fn build(docs: usize, df: DfStrategy) -> (Flash, RamBudget, SearchEngine, NaiveSearch) {
    // 128 KB: the RAM-dictionary ablation needs ~16 B per distinct term
    // (48 KB at vocabulary 3000) *on top of* the engine residents — on
    // the 64 KB secure token it aborts with a RAM error, which is
    // precisely why the tutorial's framework favors streaming df.
    let flash = Flash::new(FlashGeometry::new(2048, 64, 4096));
    let ram = RamBudget::new(128 * 1024);
    let mut engine = SearchEngine::new(&flash, &ram, 128, 1024, df).unwrap();
    let mut oracle = NaiveSearch::new();
    let cfg = CorpusConfig {
        num_docs: docs,
        vocabulary: 3000,
        doc_len: 20,
        zipf_s: 1.0,
    };
    let mut rng = StdRng::seed_from_u64(17);
    for doc in generate_corpus(&cfg, &mut rng) {
        engine.index_document(&doc).unwrap();
        oracle.index(&doc);
    }
    engine.flush().unwrap();
    (flash, ram, engine, oracle)
}

/// Measure one (corpus, query-size) point.
pub fn measure(docs: usize, keywords: usize, df: DfStrategy) -> E3Point {
    let (flash, ram, engine, oracle) = build(docs, df);
    let kw: Vec<String> = (0..keywords).map(|i| format!("w{}", 10 + i * 37)).collect();
    let kw_refs: Vec<&str> = kw.iter().map(String::as_str).collect();
    let base = ram.used();
    ram.reset_high_water();
    flash.reset_stats();
    let hits = engine.search(&kw_refs, 10).unwrap();
    let engine_ios = flash.stats().page_reads;
    let engine_ram = ram.high_water() - base;
    let expected = oracle.search(&kw_refs, 10);
    let exact = hits.iter().map(|h| h.doc).collect::<Vec<_>>()
        == expected.iter().map(|h| h.doc).collect::<Vec<_>>();
    E3Point {
        docs,
        keywords,
        engine_ram,
        engine_ios,
        naive_accumulators: oracle.accumulators_for(&kw_refs),
        exact,
    }
}

/// Regenerate the E3 table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E3 — embedded search: 1 RAM page per keyword, exact top-N",
        &[
            "docs",
            "keywords",
            "df mode",
            "peak query RAM (B)",
            "page reads",
            "naive accumulators",
            "exact top-10",
        ],
    );
    for docs in [1000usize, 5000] {
        for keywords in [1usize, 2, 4] {
            for (df, label) in [
                (DfStrategy::TwoPass, "two-pass"),
                (DfStrategy::RamDictionary, "ram-dict"),
            ] {
                let p = measure(docs, keywords, df);
                t.row(vec![
                    p.docs.to_string(),
                    p.keywords.to_string(),
                    label.to_string(),
                    p.engine_ram.to_string(),
                    p.engine_ios.to_string(),
                    p.naive_accumulators.to_string(),
                    if p.exact { "yes" } else { "NO" }.to_string(),
                ]);
            }
        }
    }
    t.note("paper shape: query RAM stays ~1 page/keyword + top-N regardless of corpus size,");
    t.note("while the classical algorithm allocates one accumulator per retrieved docid;");
    t.note("ablation: two-pass df costs ~2x the reads of the RAM dictionary but O(1) extra RAM;");
    t.note("the dictionary alone (~16 B/term = 48 KB at vocab 3000) would not fit the 64 KB token");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ram_is_bounded_and_results_exact() {
        let p = measure(800, 3, DfStrategy::TwoPass);
        assert!(p.exact);
        // 3 cursors + df page + heap + slack, on 2 KB pages.
        assert!(p.engine_ram < 5 * 2048 + 1024, "got {}", p.engine_ram);
    }

    #[test]
    fn two_pass_reads_more_than_dictionary() {
        let a = measure(800, 2, DfStrategy::TwoPass);
        let b = measure(800, 2, DfStrategy::RamDictionary);
        assert!(a.engine_ios > b.engine_ios);
        assert!(a.exact && b.exact);
    }
}

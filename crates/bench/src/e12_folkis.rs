//! E12 — Folk-IS: delivery over an infrastructure-free network.
//!
//! Delivery ratio and latency vs participant density, plus the
//! copy-budget cost/latency trade-off — the feasibility numbers behind
//! "no infrastructure required, a delay tolerant network is
//! established".

use pds_obs::rng::SeedableRng;
use pds_obs::rng::StdRng;
use pds_sync::{FolkSim, FolkSimConfig, FolkStats};

use crate::table::Table;

/// One measured configuration.
pub struct E12Point {
    /// Participants.
    pub participants: usize,
    /// Grid side.
    pub grid: usize,
    /// Copy budget (0 = flooding).
    pub copy_budget: usize,
    /// Run statistics.
    pub stats: FolkStats,
}

/// Run one configuration with 20 bundles for up to `max_steps`.
pub fn measure(
    participants: usize,
    grid: usize,
    copy_budget: usize,
    max_steps: u64,
    seed: u64,
) -> E12Point {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sim = FolkSim::new(
        FolkSimConfig {
            participants,
            grid,
            copy_budget,
        },
        &mut rng,
    );
    for i in 0..20 {
        sim.send(
            i % participants,
            participants - 1 - (i % participants),
            b"form",
        );
    }
    let stats = sim.run(max_steps, &mut rng);
    E12Point {
        participants,
        grid,
        copy_budget,
        stats,
    }
}

/// Regenerate the E12 table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E12 — Folk-IS delay-tolerant delivery vs density and copy budget",
        &[
            "participants",
            "grid",
            "budget",
            "delivery %",
            "mean latency (steps)",
            "transfers",
        ],
    );
    for (participants, grid) in [(40usize, 25usize), (80, 25), (160, 25), (320, 25)] {
        let p = measure(participants, grid, 0, 4000, 31);
        t.row(vec![
            p.participants.to_string(),
            format!("{grid}x{grid}"),
            "inf".to_string(),
            format!("{:.0}", p.stats.delivery_ratio() * 100.0),
            format!("{:.1}", p.stats.mean_latency()),
            p.stats.transfers.to_string(),
        ]);
    }
    // Bounded replication needs a longer horizon: with k copies the
    // delivery is a k-walker hitting time, not an epidemic wavefront.
    for budget in [2usize, 8] {
        let p = measure(160, 25, budget, 60_000, 31);
        t.row(vec![
            p.participants.to_string(),
            "25x25".to_string(),
            budget.to_string(),
            format!("{:.0}", p.stats.delivery_ratio() * 100.0),
            format!("{:.1}", p.stats.mean_latency()),
            p.stats.transfers.to_string(),
        ]);
    }
    t.note("paper shape: delivery latency falls as density grows (more contacts);");
    t.note("bounding replicas trades latency for carrying cost — both viable at village scale");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_improves_latency() {
        let sparse = measure(40, 25, 0, 6000, 7);
        let dense = measure(320, 25, 0, 6000, 7);
        assert_eq!(dense.stats.delivery_ratio(), 1.0);
        assert!(
            dense.stats.mean_latency() < sparse.stats.mean_latency()
                || sparse.stats.delivery_ratio() < 1.0
        );
    }

    #[test]
    fn budget_caps_transfers() {
        let capped = measure(160, 25, 2, 4000, 8);
        let flood = measure(160, 25, 0, 4000, 8);
        assert!(capped.stats.transfers < flood.stats.transfers);
    }
}

//! E15 — fleet-trace critical path vs connectivity.
//!
//! The stitched causal trace (`pds-fleet`'s `FleetTraceBuilder`) makes
//! the [TNP14] round's *causal* cost measurable: per phase, the
//! straggler hop whose delivery landed last, in bus ticks. E15 sweeps
//! connectivity and watches the critical path stretch — weakly-connected
//! tokens dilate causal time through retries and redeliveries while the
//! protocol result stays exact. Every number in this table is causal
//! (ticks, attempts, redeliveries, RAM high-water), so the table is
//! bit-for-bit deterministic and feeds the `report --check` baseline
//! gate as `fleet.trace.*` metrics.

use pds_fleet::{build_fleet, fleet_secure_aggregation, FleetConfig, OnTamper};
use pds_global::ssi::SsiThreat;
use pds_global::GroupByQuery;

use crate::table::Table;

/// One sweep cell, entirely in causal units.
#[derive(Debug, Clone, PartialEq)]
pub struct E15Point {
    /// Connectivity (probability a token is online per tick).
    pub connectivity: f64,
    /// Phases the round was stitched into.
    pub phases: usize,
    /// Causal length of the round: sum of per-phase bus ticks.
    pub total_ticks: u64,
    /// Transmission attempts burned by the per-phase stragglers.
    pub straggler_attempts: u64,
    /// Duplicate re-deliveries absorbed by dedup on the critical path.
    pub redeliveries: u64,
    /// Largest per-token RAM high-water mark attributed in the trace.
    pub peak_ram: u64,
    /// Protocol result matched the plaintext reference.
    pub exact: bool,
}

/// Run one traced aggregation and reduce its stitched trace.
pub fn measure(connectivity: f64) -> E15Point {
    let mut cfg = FleetConfig::new(64, 4, 0xE15);
    cfg.partition_size = 16;
    cfg.trace = true;
    cfg.bus.connectivity = connectivity;
    let query = GroupByQuery::bank_by_category();
    let mut fleet = build_fleet(&cfg, &query).expect("fleet build");
    let rep = fleet_secure_aggregation(
        &cfg,
        &query,
        &mut fleet,
        SsiThreat::HonestButCurious,
        OnTamper::Abort,
    )
    .expect("fleet aggregation");
    let trace = rep.trace.expect("trace requested");
    let cp = trace.critical_path();
    E15Point {
        connectivity,
        phases: trace.phases().len(),
        total_ticks: trace.total_ticks(),
        straggler_attempts: cp.iter().map(|h| h.attempts).sum(),
        redeliveries: cp.iter().map(|h| h.redeliveries).sum(),
        peak_ram: trace
            .per_token("mcu.ram.peak_bytes")
            .values()
            .copied()
            .max()
            .unwrap_or(0),
        exact: rep.result == rep.expected,
    }
}

/// Regenerate the E15 table (and publish the `fleet.trace.*` metrics).
pub fn run() -> Table {
    let mut t = Table::new(
        "E15 — fleet-trace critical path, 64 tokens × 4 workers \
         (causal bus ticks from the stitched trace)",
        &[
            "connectivity",
            "phases",
            "ticks",
            "dilation",
            "straggler attempts",
            "redeliveries",
            "peak RAM (B)",
            "exact",
        ],
    );
    let mut base_ticks = None;
    for connectivity in [1.0, 0.6, 0.3] {
        let p = measure(connectivity);
        let base = *base_ticks.get_or_insert(p.total_ticks.max(1));
        let pct = (connectivity * 100.0) as u64;
        pds_obs::metrics::counter("fleet.trace.phases").add(p.phases as u64);
        pds_obs::metrics::counter("fleet.trace.straggler_attempts").add(p.straggler_attempts);
        pds_obs::metrics::counter("fleet.trace.redeliveries").add(p.redeliveries);
        pds_obs::metrics::gauge(&format!("fleet.trace.ticks.c{pct}")).set(p.total_ticks);
        t.row(vec![
            format!("{connectivity:.1}"),
            p.phases.to_string(),
            p.total_ticks.to_string(),
            format!("{:.2}x", p.total_ticks as f64 / base as f64),
            p.straggler_attempts.to_string(),
            p.redeliveries.to_string(),
            p.peak_ram.to_string(),
            if p.exact { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t.note(
        "ticks = causal round length from the stitched fleet trace (sum of per-phase \
         bus ticks); dilation = ticks vs the fully-connected run of the same seed",
    );
    t.note(
        "straggler attempts/redeliveries: transmission attempts and dedup-absorbed \
         duplicates of each phase's last-delivered hop (the critical path)",
    );
    t.note("all columns are causal, so this table is baseline-checked by `report --check`");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn causal_cells_are_deterministic_and_exact() {
        let a = measure(1.0);
        assert_eq!(a, measure(1.0), "same seed, same causal trace");
        assert!(a.exact);
        assert!(a.phases >= 3);
        assert!(a.total_ticks > 0);
        assert!(a.peak_ram > 0, "RAM attribution rode along");
    }

    #[test]
    fn weak_connectivity_dilates_the_critical_path() {
        let solid = measure(1.0);
        let weak = measure(0.3);
        assert!(weak.total_ticks > solid.total_ticks);
        assert!(weak.exact, "time dilates, correctness doesn't");
    }
}

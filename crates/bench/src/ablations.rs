//! Ablations A1–A4: the design choices DESIGN.md calls out, each varied
//! in isolation.
//!
//! * **A1** — the PBFilter Bloom budget (the tutorial fixes ~2 B/key;
//!   what do 4/8/16/32 bits buy?).
//! * **A2** — the secure-aggregation partition size (token capacity per
//!   connection): rounds vs per-token load.
//! * **A3** — the co-design calibration of the device ladder (the
//!   tutorial's open question made concrete).
//! * **A4** — the "other data models" extensions: the log+summary recipe
//!   applied to time series and key-value data, measured the same way as
//!   E1.

use pds_db::{KvStore, PBFilter, TimeSeries};
use pds_flash::{Flash, FlashGeometry};
use pds_global::secure_agg::{secure_aggregation, OnTamper};
use pds_global::{GroupByQuery, Population, Ssi};
use pds_mcu::codesign::calibrate_ladder;
use pds_obs::rng::SeedableRng;
use pds_obs::rng::StdRng;

use crate::table::Table;

/// A1 — Bloom bits/key vs lookup cost and summary size.
pub fn a1_bloom_budget() -> Table {
    let mut t = Table::new(
        "A1 — PBFilter Bloom budget: bits/key vs lookup I/O and summary size",
        &[
            "bits/key",
            "summary pages",
            "lookup IOs",
            "false-positive probes",
        ],
    );
    let rows = 30_000u32;
    let domain = 1500u32;
    for bits in [4usize, 8, 16, 32] {
        let flash = Flash::new(FlashGeometry::new(2048, 64, 4096));
        let mut idx = PBFilter::with_bits_per_key(&flash, bits);
        for i in 0..rows {
            idx.insert(format!("city-{:05}", i % domain).as_bytes(), i)
                .unwrap();
        }
        idx.flush().unwrap();
        let probe = format!("city-{:05}", domain / 2);
        flash.reset_stats();
        let hits = idx.lookup(probe.as_bytes()).unwrap();
        let ios = flash.stats().page_reads;
        // True pages holding the key: hits are spread over the keys log.
        let keys_per_page = 2046 / (2 + probe.len() + 4);
        let true_pages = hits
            .iter()
            .map(|r| *r as usize / keys_per_page)
            .collect::<std::collections::BTreeSet<_>>()
            .len() as u64;
        let summary_ios = idx.num_summary_pages() as u64;
        let fp_probes = ios.saturating_sub(summary_ios + true_pages);
        t.row(vec![
            bits.to_string(),
            idx.num_summary_pages().to_string(),
            ios.to_string(),
            fp_probes.to_string(),
        ]);
    }
    t.note("the tutorial's 16 bits/key sits at the knee: 8 bits admits false-positive");
    t.note("probes, 32 bits doubles the summary log for little probe reduction");
    t
}

/// A2 — secure-aggregation partition size.
pub fn a2_partition_size() -> Table {
    let mut t = Table::new(
        "A2 — secure aggregation: partition size (token capacity) vs rounds and load",
        &["partition", "rounds", "token tuples", "SSI bytes", "exact"],
    );
    let mut rng = StdRng::seed_from_u64(41);
    let q = GroupByQuery::bank_by_category();
    let mut pop = Population::synthetic(300, &q.domain, &mut rng).unwrap();
    let truth = pds_global::plaintext_groupby(&mut pop, &q).unwrap();
    for partition in [4usize, 16, 64, 256] {
        let ssi = Ssi::honest(partition as u64);
        let (r, stats) =
            secure_aggregation(&mut pop, &q, &ssi, partition, OnTamper::Abort, &mut rng).unwrap();
        t.row(vec![
            partition.to_string(),
            stats.rounds.to_string(),
            stats.token_tuples.to_string(),
            stats.ssi_bytes.to_string(),
            if r == truth { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t.note("small partitions mean many cheap token connections (deep tree);");
    t.note("large partitions mean few heavy ones — the dial is the token's capacity");
    t
}

/// A3 — the co-design device ladder.
pub fn a3_codesign() -> Table {
    let mut t = Table::new(
        "A3 — co-design calibration: what each device class can execute",
        &[
            "device",
            "RAM (KB)",
            "max search keywords (top-10)",
            "max sort fan-in",
        ],
    );
    for c in calibrate_ladder() {
        t.row(vec![
            c.device.to_string(),
            (c.ram / 1024).to_string(),
            c.max_keywords
                .map_or_else(|| "0".to_string(), |k| k.to_string()),
            c.max_fan_in.to_string(),
        ]);
    }
    t.note("answers the tutorial's open question 'how to calibrate the HW (RAM) to");
    t.note("data-oriented treatments?' — in closed form, pinned by tests to the operators");
    t
}

/// A4 — the framework extended to time series and key-value data.
pub fn a4_extensions() -> Table {
    let mut t = Table::new(
        "A4 — log+summary recipe on other data models (tutorial's extension challenge)",
        &[
            "model",
            "records",
            "data pages",
            "query",
            "query IOs",
            "full-scan IOs",
        ],
    );
    // Time series: month aggregate over a year of minutely samples.
    let flash = Flash::new(FlashGeometry::new(2048, 64, 8192));
    let mut ts = TimeSeries::new(&flash);
    let n = 200_000u64;
    for i in 0..n {
        ts.append(i * 60, (i % 500) as i64).unwrap();
    }
    ts.flush().unwrap();
    flash.reset_stats();
    ts.range_aggregate(n * 60 / 3, n * 60 / 3 + 2_592_000)
        .unwrap();
    let ios = flash.stats().page_reads;
    t.row(vec![
        "time series".into(),
        n.to_string(),
        ts.num_data_pages().to_string(),
        "30-day SUM/AVG".into(),
        ios.to_string(),
        ts.num_data_pages().to_string(),
    ]);
    // Key-value: point get among many shadowed versions.
    let flash = Flash::new(FlashGeometry::new(2048, 64, 8192));
    let mut kv = KvStore::new(&flash);
    for i in 0..60_000u32 {
        kv.put(format!("user-{}", i % 2000).as_bytes(), &i.to_le_bytes())
            .unwrap();
    }
    kv.flush().unwrap();
    flash.reset_stats();
    kv.get(b"user-1000").unwrap().unwrap();
    let ios = flash.stats().page_reads;
    t.row(vec![
        "key-value".into(),
        "60000".into(),
        kv.num_data_pages().to_string(),
        "point get".into(),
        ios.to_string(),
        kv.num_data_pages().to_string(),
    ]);
    t.note("both stores answer at summary-scan cost, never scanning the data log —");
    t.note("the Part II framework carries over unchanged");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_more_bits_fewer_false_probes() {
        let t = a1_bloom_budget();
        let fp: Vec<u64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(fp[0] >= fp[2], "4 bits must not beat 16 bits: {fp:?}");
        let pages: Vec<u64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(pages[3] > pages[1], "32-bit summaries are larger");
    }

    #[test]
    fn a2_rounds_shrink_with_partition_size() {
        let t = a2_partition_size();
        let rounds: Vec<u32> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(rounds[0] > rounds[3]);
        assert!(t.rows.iter().all(|r| r[4] == "yes"));
    }

    #[test]
    fn a3_ladder_has_every_device() {
        let t = a3_codesign();
        assert_eq!(t.rows.len(), 5);
    }

    #[test]
    fn a4_queries_beat_full_scans_by_a_lot() {
        let t = a4_extensions();
        for row in &t.rows {
            let q: u64 = row[4].parse().unwrap();
            let scan: u64 = row[5].parse().unwrap();
            assert!(q * 3 < scan, "{row:?}");
        }
    }
}

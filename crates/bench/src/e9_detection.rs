//! E9 — deterring the covert adversary: detection probability of
//! spot-checking.
//!
//! "Weakly-Malicious (covert adversary = does not want to be detected) →
//! must be prevented via security primitives." The table sweeps the
//! dropped fraction `f` and the sampling rate `s` and compares measured
//! detection frequency to the analytic `1 − (1−s)^{fN}`.

use pds_crypto::SymmetricKey;
use pds_global::detection::{analytic_detection, measure_detection};
use pds_obs::rng::SeedableRng;
use pds_obs::rng::StdRng;

use crate::table::Table;

/// One grid point.
pub struct E9Point {
    /// Fraction of tuples dropped.
    pub drop_rate: f64,
    /// Spot-check sampling rate.
    pub sample_rate: f64,
    /// Measured detection frequency.
    pub measured: f64,
    /// Analytic prediction.
    pub analytic: f64,
}

/// Measure the (f, s) grid for `n` tuples and `trials` repetitions.
pub fn measure(n: u64, trials: u32, seed: u64) -> Vec<E9Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    let key = SymmetricKey::from_seed(b"e9");
    let mut out = Vec::new();
    for drop_rate in [0.01f64, 0.05, 0.2] {
        for sample_rate in [0.01f64, 0.05, 0.1] {
            let measured = measure_detection(n, drop_rate, sample_rate, trials, &key, &mut rng);
            let analytic = analytic_detection((n as f64 * drop_rate) as u64, sample_rate);
            out.push(E9Point {
                drop_rate,
                sample_rate,
                measured,
                analytic,
            });
        }
    }
    out
}

/// Regenerate the E9 table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E9 — covert-adversary deterrence: detection probability of spot checks (N=500)",
        &[
            "drop f",
            "sample s",
            "measured P[detect]",
            "analytic 1-(1-s)^{fN}",
        ],
    );
    for p in measure(500, 60, 3) {
        t.row(vec![
            format!("{:.2}", p.drop_rate),
            format!("{:.2}", p.sample_rate),
            format!("{:.3}", p.measured),
            format!("{:.3}", p.analytic),
        ]);
    }
    t.note("paper shape: even small sampling rates detect meaningful cheating almost surely;");
    t.note("a covert adversary that 'does not want to be detected' is therefore deterred");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_tracks_analytic_everywhere() {
        for p in measure(300, 60, 9) {
            assert!(
                (p.measured - p.analytic).abs() < 0.25,
                "f={} s={}: {} vs {}",
                p.drop_rate,
                p.sample_rate,
                p.measured,
                p.analytic
            );
        }
    }

    #[test]
    fn detection_is_monotone_in_both_knobs() {
        let grid = measure(300, 80, 10);
        let get = |f: f64, s: f64| {
            grid.iter()
                .find(|p| (p.drop_rate - f).abs() < 1e-9 && (p.sample_rate - s).abs() < 1e-9)
                .unwrap()
                .analytic
        };
        assert!(get(0.2, 0.05) > get(0.01, 0.05));
        assert!(get(0.05, 0.1) > get(0.05, 0.01));
    }
}

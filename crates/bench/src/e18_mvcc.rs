//! E18 — MVCC change log: delta-based cell sync and continuous queries.
//!
//! Two consumers of the HLC change log, measured as fleet workloads:
//!
//! * **Part A — delta reconcile** (`pds-fleet::cellnet` with
//!   `CellNetConfig::delta`): cells ask the cloud "changes since
//!   version v" instead of pulling full snapshots. Both modes must
//!   converge to the *same* per-cell version witness
//!   ([`pds_fleet::CellNet::versions`]), bit-identical at 1/2/8 worker
//!   threads; the win is measured on an idle round after convergence —
//!   the low-write-rate steady state where a fleet spends its life —
//!   where delta reconcile must move at least 5× fewer payload bytes.
//! * **Part B — continuous queries** (`pds-fleet::subs`): every token
//!   holds a standing predicate over its own PDS, polls it after each
//!   commit round, and mails the result delta to the SSI collector.
//!   The collector's `(token, rowid)` ledger must equal the ground
//!   truth written — every committed matching row delivered exactly
//!   once, zero duplicates — with tokens power-cycled mid-run.
//!
//! Environment knobs: `PDS_E18_CELLS` (cap on the 64/256/512 sweep,
//! default 512), `PDS_E18_MAX_THREADS` (default 4).

use pds_fleet::{CellNet, CellNetConfig, SubNet, SubNetConfig};
use pds_sync::TrustedCell;

use crate::table::Table;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Convergence witness and idle-round payload bytes of one cell network.
pub struct E18CellPoint {
    /// Rounds until the network went quiet.
    pub rounds: u32,
    /// Per-cell `(slice, version)` maps after convergence.
    pub witness: Vec<Vec<(String, u64)>>,
    /// Bus payload bytes one idle (fully converged) round moves.
    pub idle_bytes: u64,
}

/// Build a cell network, seed writes on a few cells, sync to
/// convergence, then measure one idle round.
pub fn measure_cells(cells: usize, workers: usize, seed: u64, delta: bool) -> E18CellPoint {
    let cfg = CellNetConfig::new(cells, workers, seed);
    let cfg = if delta { cfg.with_delta() } else { cfg };
    let mut n = CellNet::build(cfg, |i| {
        TrustedCell::new(&format!("cell-{i}"), b"owner-e18")
    })
    .expect("cell net build");
    // A handful of writers — the fleet is mostly readers, as in the
    // Trusted-Cells deployment the paper sketches.
    n.write(0, "energy-profile", &[0x11; 256]);
    n.write(cells / 2, "prefs", &[0x22; 128]);
    n.write(cells - 1, "notes", &[0x33; 64]);
    let rounds = n.sync_until_quiet(60).expect("sync converges");
    assert!(n.converged(), "cell network failed to converge");
    let before = n.bus_stats().payload_bytes;
    n.sync_round().expect("idle round");
    E18CellPoint {
        rounds,
        witness: n.versions(),
        idle_bytes: n.bus_stats().payload_bytes - before,
    }
}

/// Outcome of one subscription-fleet run.
pub struct E18SubPoint {
    /// Matching rows committed across the fleet (ground truth).
    pub rows_matched: usize,
    /// Rows the collector folded (first arrivals).
    pub rows_delivered: usize,
    /// Duplicate arrivals at the collector.
    pub duplicates: u64,
    /// The exactly-once witness.
    pub exactly_once: bool,
}

/// Run a subscription fleet for `rounds` rounds, power-cycling a third
/// of the tokens between rounds.
pub fn measure_subs(tokens: usize, seed: u64, rounds: u32) -> E18SubPoint {
    let mut n = SubNet::build(SubNetConfig::new(tokens, seed)).expect("sub net build");
    for r in 0..rounds {
        n.round().expect("sub round");
        // Power-cycle a sliding third of the fleet mid-run: cursors and
        // the change log must survive the hibernate/wake cycle.
        for t in (0..tokens).filter(|t| t % 3 == (r as usize) % 3) {
            n.power_cycle(t).expect("power cycle");
        }
    }
    n.settle(20_000);
    E18SubPoint {
        rows_matched: n.expected().len(),
        rows_delivered: n.delivered().len(),
        duplicates: n.duplicates(),
        exactly_once: n.exactly_once(),
    }
}

/// Regenerate the E18 table.
pub fn run() -> Table {
    let cap = env_u64("PDS_E18_CELLS", 512) as usize;
    let workers = env_u64("PDS_E18_MAX_THREADS", 4).max(1) as usize;
    let sizes: Vec<usize> = [64, 256, 512]
        .into_iter()
        .filter(|c| *c <= cap.max(64))
        .collect();

    let mut t = Table::new(
        "E18 — MVCC change log: delta cell sync and continuous queries \
         (versioned reads feeding the fleet)",
        &[
            "workload",
            "size",
            "rounds",
            "idle full (B)",
            "idle delta (B)",
            "saving",
            "witness",
            "determ",
        ],
    );

    for &cells in &sizes {
        let full = measure_cells(cells, workers, 0xE18, false);
        let delta = measure_cells(cells, workers, 0xE18, true);
        // The determinism contract: the delta-mode witness is
        // bit-identical at 1, 2 and 8 worker threads.
        let w1 = measure_cells(cells, 1, 0xE18, true);
        let w8 = measure_cells(cells, 8, 0xE18, true);
        let deterministic = delta.witness == w1.witness && delta.witness == w8.witness;
        let saving = if delta.idle_bytes == 0 {
            "inf".to_string()
        } else {
            format!("{:.1}x", full.idle_bytes as f64 / delta.idle_bytes as f64)
        };
        t.row(vec![
            "cell sync".to_string(),
            cells.to_string(),
            format!("{}/{}", full.rounds, delta.rounds),
            full.idle_bytes.to_string(),
            delta.idle_bytes.to_string(),
            saving,
            if full.witness == delta.witness {
                "equal"
            } else {
                "DIVERGED"
            }
            .to_string(),
            if deterministic { "yes" } else { "NO" }.to_string(),
        ]);
    }

    let tokens = (cap / 8).clamp(16, 64);
    let subs = measure_subs(tokens, 0xE18, 4);
    t.row(vec![
        "subscriptions".to_string(),
        tokens.to_string(),
        "4".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!(
            "{}/{} rows, {} dup{}",
            subs.rows_delivered,
            subs.rows_matched,
            subs.duplicates,
            if subs.exactly_once {
                ", exact"
            } else {
                ", BROKEN"
            }
        ),
        "-".to_string(),
    ]);

    t.note(
        "idle full/delta = bus payload bytes one fully-converged sync round moves; \
         delta mode answers in-sync slices with a NotModified header instead of a \
         full ciphertext",
    );
    t.note(
        "witness = per-cell (slice, version) maps after convergence — full and \
         delta reconcile must agree; determ = delta witness bit-identical at \
         1/2/8 worker threads",
    );
    t.note(
        "subscriptions row: collector ledger vs ground truth after 4 commit \
         rounds with a third of the tokens power-cycled between rounds — \
         exactly-once or BROKEN",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_reconcile_converges_equal_and_5x_cheaper() {
        let full = measure_cells(48, 2, 7, false);
        let delta = measure_cells(48, 2, 7, true);
        assert_eq!(full.witness, delta.witness);
        assert!(
            delta.idle_bytes * 5 <= full.idle_bytes,
            "idle round: delta {} B vs full {} B",
            delta.idle_bytes,
            full.idle_bytes
        );
        let w1 = measure_cells(48, 1, 7, true);
        assert_eq!(delta.witness, w1.witness);
    }

    #[test]
    fn subscriptions_stay_exactly_once_across_power_cycles() {
        let p = measure_subs(9, 3, 3);
        assert!(
            p.exactly_once,
            "delivered {}/{} with {} duplicates",
            p.rows_delivered, p.rows_matched, p.duplicates
        );
        assert!(p.rows_matched > 0);
    }
}

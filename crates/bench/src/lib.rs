//! # pds-bench — the experiment harness
//!
//! One module per experiment of EXPERIMENTS.md (E1–E12). Each module
//! exposes a `run(…) -> Table` that regenerates the experiment's table;
//! the `report` binary prints them all, and the Criterion benches time
//! the hot operation of each experiment.

pub mod ablations;
pub mod baseline;
pub mod e10_ppdp;
pub mod e11_sync;
pub mod e12_folkis;
pub mod e13_recovery;
pub mod e14_fleet;
pub mod e15_fleet_trace;
pub mod e16_telemetry;
pub mod e17_sched;
pub mod e18_mvcc;
pub mod e19_crash;
pub mod e1_pbfilter;
pub mod e2_reorg;
pub mod e3_search;
pub mod e4_spj;
pub mod e5_random_writes;
pub mod e6_protocols;
pub mod e7_toolkit;
pub mod e8_fhe_cost;
pub mod e9_detection;
pub mod harness;
pub mod table;

pub use table::Table;

//! E14 — fleet scaling: tokens × threads × connectivity.
//!
//! The tutorial's ecosystem is "millions" of weakly-connected tokens
//! behind an always-available SSI. E14 runs the [TNP14] secure
//! aggregation as a phased fleet job (`pds-fleet`) and sweeps worker
//! threads and connectivity, reporting protocol throughput (tokens/s
//! over the timed collection → reduction → distribution phases),
//! speedup versus a single worker, and the bus delivery counters
//! (messages retried / duplicated / expired). Token connections carry a
//! simulated link latency — the cost of talking to a weakly-connected
//! token — which is what worker threads overlap; fleet construction
//! (manufacturing tokens) is excluded from the timed region.
//!
//! Every run of a `(seed, tokens, connectivity)` cell is bit-for-bit
//! deterministic regardless of the worker count: the table's `determ`
//! column re-checks, per connectivity, that result, leakage ledger and
//! bus counters were identical across every thread count swept
//! (`tests/fleet.rs` proves the same at 1/2/8 workers).
//!
//! Environment knobs: `PDS_E14_TOKENS` (default 1024),
//! `PDS_E14_MAX_THREADS` (default 8), `PDS_E14_LATENCY_US` (default
//! 300).

use pds_fleet::{build_fleet, fleet_secure_aggregation, FleetConfig, OnTamper};
use pds_global::ssi::SsiThreat;
use pds_global::GroupByQuery;

use crate::table::Table;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One sweep cell.
pub struct E14Point {
    /// Fleet size.
    pub tokens: usize,
    /// Worker threads.
    pub workers: usize,
    /// Connectivity (probability a token is online per tick).
    pub connectivity: f64,
    /// Timed protocol phases, seconds.
    pub elapsed_s: f64,
    /// Tokens per second over the timed phases.
    pub tokens_per_sec: f64,
    /// Bus transmission attempts that were lost and retried.
    pub retries: u64,
    /// Re-deliveries absorbed by dedup.
    pub duplicates: u64,
    /// Messages that ran out of attempts.
    pub expired: u64,
    /// Protocol result matched the plaintext reference.
    pub exact: bool,
    /// `(result, leakage, bus)` fingerprint for cross-thread checks.
    pub fingerprint: (Vec<(String, u64)>, u64, u64),
}

/// Run one fleet aggregation at the given shape.
pub fn measure(tokens: usize, workers: usize, connectivity: f64, latency_us: u64) -> E14Point {
    let mut cfg = FleetConfig::new(tokens, workers, 0xE14);
    cfg.link_latency_us = latency_us;
    cfg.bus.connectivity = connectivity;
    let query = GroupByQuery::bank_by_category();
    let mut fleet = build_fleet(&cfg, &query).expect("fleet build");
    let rep = fleet_secure_aggregation(
        &cfg,
        &query,
        &mut fleet,
        SsiThreat::HonestButCurious,
        OnTamper::Abort,
    )
    .expect("fleet aggregation");
    E14Point {
        tokens,
        workers,
        connectivity,
        elapsed_s: rep.elapsed.as_secs_f64(),
        tokens_per_sec: rep.tokens_per_sec(tokens),
        retries: rep.bus.retries,
        duplicates: rep.bus.duplicates,
        expired: rep.bus.expired,
        exact: rep.result == rep.expected,
        fingerprint: (
            rep.result.clone(),
            rep.leakage.tuples_seen ^ rep.leakage.bytes_seen,
            rep.bus.delivered ^ rep.bus.retries ^ rep.bus.ticks,
        ),
    }
}

/// Regenerate the E14 table.
pub fn run() -> Table {
    let tokens = env_u64("PDS_E14_TOKENS", 1024) as usize;
    let max_threads = env_u64("PDS_E14_MAX_THREADS", 8) as usize;
    let latency_us = env_u64("PDS_E14_LATENCY_US", 300);
    let threads: Vec<usize> = [1, 2, 4, 8]
        .into_iter()
        .filter(|t| *t <= max_threads.max(1))
        .collect();

    let mut t = Table::new(
        &format!(
            "E14 — fleet scaling, {tokens} tokens, link latency {latency_us}µs \
             (secure aggregation as a phased fleet job)"
        ),
        &[
            "connectivity",
            "threads",
            "time (s)",
            "tokens/s",
            "speedup",
            "retried",
            "dup",
            "expired",
            "exact",
            "determ",
        ],
    );

    for connectivity in [1.0, 0.3] {
        let mut base_tps = None;
        let mut first_fp = None;
        for &workers in &threads {
            let p = measure(tokens, workers, connectivity, latency_us);
            let base = *base_tps.get_or_insert(p.tokens_per_sec);
            let deterministic = first_fp
                .get_or_insert_with(|| p.fingerprint.clone())
                .clone()
                == p.fingerprint;
            t.row(vec![
                format!("{connectivity:.1}"),
                p.workers.to_string(),
                format!("{:.3}", p.elapsed_s),
                format!("{:.0}", p.tokens_per_sec),
                format!("{:.2}x", p.tokens_per_sec / base),
                p.retries.to_string(),
                p.duplicates.to_string(),
                p.expired.to_string(),
                if p.exact { "yes" } else { "NO" }.to_string(),
                if deterministic { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    t.note(
        "speedup = throughput vs 1 worker thread; workers overlap the per-connection \
         link latency of weakly-connected tokens (fleet build excluded from timing)",
    );
    t.note(
        "determ = result, leakage ledger and bus counters identical to the 1-thread \
         run of the same (seed, connectivity) — the phased-job determinism contract",
    );
    t.note("retried/dup/expired: store-and-forward bus delivery counters");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_is_exact_and_deterministic() {
        let a = measure(32, 1, 0.5, 0);
        let b = measure(32, 4, 0.5, 0);
        assert!(a.exact && b.exact);
        assert_eq!(a.fingerprint, b.fingerprint);
    }
}

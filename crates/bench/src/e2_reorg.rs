//! E2 — "Scalability ⇒ timely reorganize the index".
//!
//! The slide's claim: as the sequential index grows, a background
//! reorganization into a B-tree-like structure (using only log
//! structures) pays for itself. We measure lookup I/Os before/after,
//! the one-time reorganization cost, and the break-even lookup count.

use pds_db::reorg::reorganize;
use pds_db::PBFilter;
use pds_flash::{Flash, FlashGeometry};
use pds_mcu::RamBudget;

use crate::table::Table;

/// One measured configuration.
pub struct E2Point {
    /// Indexed keys.
    pub keys: u32,
    /// Lookup page reads on the sequential (PBFilter) index.
    pub pbf_lookup_ios: u64,
    /// Lookup page reads on the reorganized tree.
    pub tree_lookup_ios: u64,
    /// Total page I/Os (reads + programs) of the reorganization itself.
    pub reorg_ios: u64,
    /// Lookups after which the reorganization has paid for itself.
    pub break_even: u64,
    /// Tree height.
    pub tree_height: u32,
}

/// Measure one index size (domain scales with size, fixed 20 rows/key).
pub fn measure(keys: u32) -> E2Point {
    let flash = Flash::new(FlashGeometry::new(2048, 64, 8192));
    let ram = RamBudget::new(64 * 1024);
    let domain = (keys / 20).max(1);
    let mut pbf = PBFilter::new(&flash);
    for i in 0..keys {
        pbf.insert(&(i % domain).to_be_bytes(), i).unwrap();
    }
    pbf.flush().unwrap();
    let probe = (domain / 2).to_be_bytes();

    flash.reset_stats();
    let hits = pbf.lookup(&probe).unwrap();
    let pbf_lookup_ios = flash.stats().page_reads;

    flash.reset_stats();
    let tree = reorganize(&flash, &ram, &pbf).unwrap();
    let reorg_stats = flash.stats();
    let reorg_ios = reorg_stats.page_reads + reorg_stats.page_programs;

    flash.reset_stats();
    let tree_hits = tree.lookup(&probe).unwrap();
    let tree_lookup_ios = flash.stats().page_reads;
    assert_eq!(hits.len(), tree_hits.len());

    let saved = pbf_lookup_ios.saturating_sub(tree_lookup_ios).max(1);
    E2Point {
        keys,
        pbf_lookup_ios,
        tree_lookup_ios,
        reorg_ios,
        break_even: reorg_ios.div_ceil(saved),
        tree_height: tree.height(),
    }
}

/// Regenerate the E2 table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E2 — index reorganization: sequential → B-tree-like",
        &[
            "keys",
            "seq lookup IOs",
            "tree lookup IOs",
            "tree height",
            "reorg IOs",
            "break-even lookups",
        ],
    );
    for keys in [20_000u32, 100_000, 400_000] {
        let p = measure(keys);
        t.row(vec![
            p.keys.to_string(),
            p.pbf_lookup_ios.to_string(),
            p.tree_lookup_ios.to_string(),
            p.tree_height.to_string(),
            p.reorg_ios.to_string(),
            p.break_even.to_string(),
        ]);
    }
    t.note("paper shape: sequential lookup cost grows linearly, tree lookup stays at the height;");
    t.note("reorganization cost is linear and amortizes over a bounded number of lookups");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_beats_sequential_and_breaks_even() {
        let p = measure(20_000);
        assert!(p.tree_lookup_ios < p.pbf_lookup_ios);
        assert!(p.tree_height <= 4);
        assert!(p.break_even > 0);
    }

    #[test]
    fn sequential_cost_grows_tree_cost_does_not() {
        let small = measure(10_000);
        let large = measure(40_000);
        assert!(large.pbf_lookup_ios > small.pbf_lookup_ios * 2);
        assert!(large.tree_lookup_ios <= small.tree_lookup_ios + 2);
    }
}

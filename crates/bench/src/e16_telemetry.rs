//! E16 — in-band fleet telemetry: rollup convergence and overhead.
//!
//! The telemetry plane rides the same store-and-forward bus as the
//! [TNP14] protocol itself (`pds-fleet::telemetry`): every token mails
//! its metric deltas to the collector role, which folds them into
//! tick-indexed rollups and a health verdict. E16 sweeps fleet size ×
//! connectivity and reports what that costs and how it behaves:
//!
//! * **overhead** — telemetry envelopes and payload bytes as a
//!   percentage of *all* bus traffic (the protocol plus the telemetry
//!   itself), the number a 1M-token deployment planner needs;
//! * **convergence** — bus ticks the final flush takes until the last
//!   envelope lands in the collector (the rollup's staleness bound on
//!   a weak fabric);
//! * **determinism** — every cell is re-run at 1 worker thread and the
//!   entire `TelemetrySummary` (rollup, health verdict, collector
//!   accounting) must be bit-identical to the multi-threaded run.
//!
//! Environment knobs: `PDS_E16_TOKENS` (cap on the 64/256/512 sweep,
//! default 512), `PDS_E16_MAX_THREADS` (default 4).

use pds_fleet::{build_fleet, fleet_secure_aggregation, FleetConfig, OnTamper, TelemetryConfig};
use pds_global::ssi::SsiThreat;
use pds_global::GroupByQuery;

use crate::table::Table;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One sweep cell.
pub struct E16Point {
    /// Telemetry envelopes mailed.
    pub tele_msgs: u64,
    /// Telemetry payload bytes mailed.
    pub tele_bytes: u64,
    /// All messages the bus accepted (protocol + telemetry).
    pub bus_msgs: u64,
    /// All payload bytes the bus accepted.
    pub bus_bytes: u64,
    /// Deltas the collector folded.
    pub deltas_folded: u64,
    /// Live tick buckets in the collector ring.
    pub buckets: usize,
    /// Endpoints that reported (tokens + SSI + collector).
    pub sources: usize,
    /// Ticks the final telemetry flush took to converge.
    pub convergence_ticks: u64,
    /// The standard SLO verdict.
    pub healthy: bool,
    /// Protocol result matched the plaintext reference.
    pub exact: bool,
    /// The full telemetry summary, for cross-thread comparison.
    pub summary: pds_fleet::TelemetrySummary,
}

/// Run one telemetry-instrumented fleet aggregation.
pub fn measure(tokens: usize, workers: usize, connectivity: f64) -> E16Point {
    let mut cfg = FleetConfig::new(tokens, workers, 0xE16);
    cfg.partition_size = 32;
    cfg.bus.connectivity = connectivity;
    cfg.telemetry = Some(TelemetryConfig::default());
    let query = GroupByQuery::bank_by_category();
    let mut fleet = build_fleet(&cfg, &query).expect("fleet build");
    let rep = fleet_secure_aggregation(
        &cfg,
        &query,
        &mut fleet,
        SsiThreat::HonestButCurious,
        OnTamper::Abort,
    )
    .expect("fleet aggregation");
    let tele = rep.telemetry.expect("telemetry requested");
    E16Point {
        tele_msgs: tele.msgs,
        tele_bytes: tele.bytes,
        bus_msgs: rep.bus.sent,
        bus_bytes: rep.bus.payload_bytes,
        deltas_folded: tele.stats.deltas_folded,
        buckets: tele.buckets,
        sources: tele.sources,
        convergence_ticks: tele.convergence_ticks,
        healthy: tele.health.healthy,
        exact: rep.result == rep.expected,
        summary: tele,
    }
}

fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        "-".to_string()
    } else {
        format!("{:.1}%", 100.0 * part as f64 / whole as f64)
    }
}

/// Regenerate the E16 table.
pub fn run() -> Table {
    let cap = env_u64("PDS_E16_TOKENS", 512) as usize;
    let workers = env_u64("PDS_E16_MAX_THREADS", 4).max(1) as usize;
    let sizes: Vec<usize> = [64, 256, 512]
        .into_iter()
        .filter(|t| *t <= cap.max(64))
        .collect();

    let mut t = Table::new(
        "E16 — in-band fleet telemetry: rollup convergence and overhead \
         (deltas over the store-and-forward bus)",
        &[
            "tokens",
            "connectivity",
            "tele msgs",
            "msg ovh",
            "tele bytes",
            "byte ovh",
            "folded",
            "buckets",
            "converge (ticks)",
            "health",
            "exact",
            "determ",
        ],
    );

    for connectivity in [1.0, 0.3] {
        for &tokens in &sizes {
            let p = measure(tokens, workers, connectivity);
            // The determinism contract, re-proven per cell: the entire
            // telemetry summary is bit-identical at 1 worker.
            let solo = measure(tokens, 1, connectivity);
            let deterministic = p.summary == solo.summary;
            t.row(vec![
                tokens.to_string(),
                format!("{connectivity:.1}"),
                p.tele_msgs.to_string(),
                pct(p.tele_msgs, p.bus_msgs),
                p.tele_bytes.to_string(),
                pct(p.tele_bytes, p.bus_bytes),
                p.deltas_folded.to_string(),
                p.buckets.to_string(),
                p.convergence_ticks.to_string(),
                if p.healthy { "HEALTHY" } else { "UNHEALTHY" }.to_string(),
                if p.exact { "yes" } else { "NO" }.to_string(),
                if deterministic { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    t.note(
        "msg/byte ovh = telemetry envelopes (bytes) as % of all bus traffic, \
         protocol + telemetry included",
    );
    t.note(
        "converge = bus ticks of the final flush until the last envelope lands \
         in the collector (rollup staleness bound)",
    );
    t.note(
        "determ = TelemetrySummary (rollup, health verdict, collector accounting) \
         bit-identical when the same cell runs at 1 worker thread",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_cell_is_healthy_exact_and_thread_independent() {
        let a = measure(48, 1, 0.5);
        let b = measure(48, 4, 0.5);
        assert!(a.exact && a.healthy, "{}", a.summary.health.render());
        assert_eq!(a.summary, b.summary);
        assert!(a.tele_msgs > 0 && a.tele_msgs < a.bus_msgs);
        // Envelopes now drain inside the phases' own tick loops, so the
        // final flush converges (near-)instantly.
        assert!(a.convergence_ticks < 100);
    }
}

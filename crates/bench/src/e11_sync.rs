//! E11 — medical-folder synchronization without a network.
//!
//! The field-experiment claim: local and central copies converge through
//! badge tours alone. We sweep the tour coverage (fraction of homes
//! visited per tour) and report rounds to convergence and the badge's
//! ciphertext payload.

use pds_crypto::SymmetricKey;
use pds_obs::rng::StdRng;
use pds_obs::rng::{Rng, SeedableRng};
use pds_sync::{Badge, CentralServer, MedicalFolder};

use crate::table::Table;

/// One measured configuration.
pub struct E11Point {
    /// Patients.
    pub patients: usize,
    /// Homes visited per tour.
    pub per_tour: usize,
    /// Tours until every replica pair converged.
    pub tours_to_converge: u32,
    /// Peak badge payload (ciphertext bytes).
    pub peak_badge_bytes: usize,
}

/// Simulate: seed writes on both sides, then run random tours of
/// `per_tour` homes until convergence.
pub fn measure(patients: usize, per_tour: usize, seed: u64) -> E11Point {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut server = CentralServer::new();
    let mut folders: Vec<MedicalFolder> = (0..patients)
        .map(|i| MedicalFolder::new(&format!("p{i}")))
        .collect();
    let keys: Vec<SymmetricKey> = folders.iter().map(|f| f.key().clone()).collect();
    let names: Vec<String> = folders.iter().map(|f| f.patient().to_string()).collect();
    for (i, name) in names.iter().enumerate() {
        for d in 0..3u64 {
            server.write(name, "dr", d, &format!("clinic {d}"));
            folders[i].write("nurse", d, &format!("home {d}"));
        }
    }
    let converged = |folders: &[MedicalFolder], server: &CentralServer| {
        folders
            .iter()
            .zip(&names)
            .all(|(f, n)| f.entries() == server.entries(n))
    };
    let mut tours = 0u32;
    let mut peak = 0usize;
    while !converged(&folders, &server) && tours < 1000 {
        tours += 1;
        // Random subset of homes on this tour.
        let mut visit: Vec<usize> = (0..patients).collect();
        for i in (1..visit.len()).rev() {
            visit.swap(i, rng.gen_range(0..=i));
        }
        visit.truncate(per_tour);
        let tour_patients: Vec<(&str, &SymmetricKey)> = visit
            .iter()
            .map(|&i| (names[i].as_str(), &keys[i]))
            .collect();
        let mut badge = Badge::new();
        badge.load_central(&server, &tour_patients, &mut rng);
        peak = peak.max(badge.carried_bytes());
        for &i in &visit {
            badge.sync_with_folder(&mut folders[i], &mut rng);
        }
        peak = peak.max(badge.carried_bytes());
        badge.unload_central(&mut server, &tour_patients);
    }
    E11Point {
        patients,
        per_tour,
        tours_to_converge: tours,
        peak_badge_bytes: peak,
    }
}

/// Regenerate the E11 table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E11 — social-medical folder: badge tours to convergence (no network)",
        &[
            "patients",
            "homes/tour",
            "tours to converge",
            "peak badge bytes",
        ],
    );
    for (patients, per_tour) in [(10usize, 10usize), (10, 5), (10, 2), (30, 10)] {
        let p = measure(patients, per_tour, 21);
        t.row(vec![
            p.patients.to_string(),
            p.per_tour.to_string(),
            p.tours_to_converge.to_string(),
            p.peak_badge_bytes.to_string(),
        ]);
    }
    t.note("paper shape: full tours converge in one round; partial tours converge in");
    t.note("~coupon-collector rounds — and the badge only ever carries ciphertext");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_tour_converges_in_one_round() {
        let p = measure(8, 8, 1);
        assert_eq!(p.tours_to_converge, 1);
        assert!(p.peak_badge_bytes > 0);
    }

    #[test]
    fn partial_tours_need_more_rounds_but_converge() {
        let p = measure(12, 3, 2);
        assert!(p.tours_to_converge > 1);
        assert!(p.tours_to_converge < 1000, "must converge");
    }
}

//! E7 — the [CKV+02] toolkit primitives: correctness and cost scaling.
//!
//! The tutorial presents the toolkit as the cheap-but-specific route:
//! message and crypto-op counts grow gently with the number of parties,
//! in stark contrast to generic SMC (see E8).

use pds_crypto::CommutativeGroup;
use pds_global::toolkit::{
    secure_intersection_size, secure_scalar_product, secure_set_union, secure_sum,
};
use pds_obs::rng::StdRng;
use pds_obs::rng::{Rng, SeedableRng};

use crate::table::Table;

/// One primitive's measured run.
pub struct E7Point {
    /// Primitive name.
    pub primitive: &'static str,
    /// Parties.
    pub parties: usize,
    /// Items (or vector length) per party.
    pub items: usize,
    /// Messages exchanged.
    pub messages: u64,
    /// Crypto operations.
    pub crypto_ops: u64,
    /// Output correct vs plaintext computation.
    pub correct: bool,
}

/// Measure all four primitives at `parties` parties.
pub fn measure(parties: usize, seed: u64) -> Vec<E7Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();

    // Secure sum.
    let values: Vec<u64> = (0..parties).map(|_| rng.gen_range(0..10_000)).collect();
    let modulus = 1u64 << 40;
    let (sum, s) = secure_sum(&values, modulus, &mut rng);
    out.push(E7Point {
        primitive: "secure-sum",
        parties,
        items: 1,
        messages: s.messages,
        crypto_ops: s.crypto_ops,
        correct: sum == values.iter().sum::<u64>() % modulus,
    });

    // Set union & intersection size over small per-party sets.
    let group = CommutativeGroup::test_params();
    let items = 6usize;
    let sets: Vec<Vec<Vec<u8>>> = (0..parties)
        .map(|p| {
            (0..items)
                .map(|i| format!("item-{}", (p + i * 3) % (parties + items)).into_bytes())
                .collect()
        })
        .collect();
    let mut plain_union: Vec<Vec<u8>> = sets.iter().flatten().cloned().collect();
    plain_union.sort();
    plain_union.dedup();
    let (union, s) = secure_set_union(&sets, &group, &mut rng);
    out.push(E7Point {
        primitive: "set-union",
        parties,
        items,
        messages: s.messages,
        crypto_ops: s.crypto_ops,
        correct: union.len() == plain_union.len(),
    });

    let plain_inter = sets[0]
        .iter()
        .filter(|x| sets[1..].iter().all(|s| s.contains(x)))
        .count();
    let (inter, s) = secure_intersection_size(&sets, &group, &mut rng);
    out.push(E7Point {
        primitive: "intersection-size",
        parties,
        items,
        messages: s.messages,
        crypto_ops: s.crypto_ops,
        correct: inter == plain_inter,
    });

    // Scalar product (two parties, vector length grows with `parties` to
    // keep the table uniform).
    let len = parties * 2;
    let x: Vec<u64> = (0..len).map(|_| rng.gen_range(0..100)).collect();
    let y: Vec<u64> = (0..len).map(|_| rng.gen_range(0..100)).collect();
    let (prod, s) = secure_scalar_product(&x, &y, 256, &mut rng);
    let expected: u64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
    out.push(E7Point {
        primitive: "scalar-product",
        parties: 2,
        items: len,
        messages: s.messages,
        crypto_ops: s.crypto_ops,
        correct: prod == expected,
    });
    out
}

/// Regenerate the E7 table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E7 — [CKV+02] toolkit primitives: cost vs number of parties",
        &[
            "parties",
            "primitive",
            "items/party",
            "messages",
            "crypto ops",
            "correct",
        ],
    );
    for parties in [3usize, 10, 30] {
        for p in measure(parties, parties as u64) {
            t.row(vec![
                p.parties.to_string(),
                p.primitive.to_string(),
                p.items.to_string(),
                p.messages.to_string(),
                p.crypto_ops.to_string(),
                if p.correct { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    t.note("paper shape: secure sum is linear messages & zero crypto; the set primitives");
    t.note("pay n layers of commutative encryption per item (quadratic total work) —");
    t.note("cheap for data mining, but each primitive fits only its one application");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_primitives_correct_at_several_sizes() {
        for parties in [3usize, 8] {
            for p in measure(parties, 99) {
                assert!(p.correct, "{} at {} parties", p.primitive, parties);
            }
        }
    }

    #[test]
    fn set_work_scales_superlinearly_sum_linearly() {
        let small = measure(3, 1);
        let large = measure(9, 1);
        let ops = |pts: &[E7Point], name: &str| {
            pts.iter().find(|p| p.primitive == name).unwrap().crypto_ops
        };
        assert!(ops(&large, "set-union") > ops(&small, "set-union") * 5);
        let msgs = |pts: &[E7Point]| {
            pts.iter()
                .find(|p| p.primitive == "secure-sum")
                .unwrap()
                .messages
        };
        assert_eq!(msgs(&large), 9);
        assert_eq!(msgs(&small), 3);
    }
}

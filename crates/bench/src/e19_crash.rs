//! E19 — crash-storm forensics: seeded power losses during an
//! aggregation round, triaged fleet-wide.
//!
//! PR 2 proved the stack survives power loss; this experiment proves it
//! can *explain* one at fleet scale. Each cell first runs the full
//! secure-aggregation protocol (the scheduler, bus and telemetry plane
//! all live), then unleashes a crash storm: a seeded subset of tokens
//! replays an aggregation round — contribution, commit, sync — with a
//! seeded [`FaultPlan`] armed to cut the power mid-round. Every victim
//! reopens, reconstructs its pre-crash timeline from the durable flight
//! recorder, and mails a `PDF1` forensics digest to the collector over
//! the store-and-forward bus.
//!
//! What the sweep proves:
//!
//! * **bit-identical forensics** — the concatenated per-victim
//!   [`ForensicsReport`](pds_core::ForensicsReport) JSON is the same at
//!   1/2/8 workers and under both eviction policies: the timeline is a
//!   pure function of the seed, never of scheduling;
//! * **exactly-once triage** — the collector folds one crash per
//!   victim, no matter how the bus redelivered the digests;
//! * **the verdict reflects the storm** — the standard health engine
//!   flips unhealthy on `forensics.crashes == 0`, and `crash_summary`
//!   names the dominant cause;
//! * **bounded write amplification** — the recorder's flash pages per
//!   recorded frame stay below 1.0 even with a sync per round.
//!
//! Environment knobs: `PDS_E19_TOKENS` (default 96),
//! `PDS_E19_MAX_THREADS` (default 8).

use pds_core::Pds;
use pds_flash::FaultPlan;
use pds_fleet::{
    build_fleet, build_token, derived_rng, fleet_secure_aggregation, mail_forensics, BusConfig,
    Collector, EvictPolicy, FleetConfig, HealthEngine, MailboxBus, OnTamper, TelemetryConfig,
    TelemetryMsg,
};
use pds_global::ssi::SsiThreat;
use pds_global::GroupByQuery;
use pds_obs::rng::Rng;
use pds_obs::DeltaTracker;

use crate::table::Table;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Derivation tag for the crash-storm fault plans (disjoint from the
/// protocol's TAG_* space).
const TAG_CRASH: u64 = 0xC4A5;

/// One sweep cell.
pub struct E19Point {
    /// Fleet size.
    pub tokens: usize,
    /// Worker threads for the aggregation phase.
    pub workers: usize,
    /// Eviction policy of the aggregation phase.
    pub evict: EvictPolicy,
    /// The protocol result matched the plaintext reference.
    pub exact: bool,
    /// Victims the storm crashed (every one must reopen).
    pub crashed: usize,
    /// Distinct crash digests the collector folded.
    pub digests: u64,
    /// Duplicate digests the exactly-once gate dropped.
    pub deduped: u64,
    /// Flight-recorder frames salvaged across all victims.
    pub frames_recovered: u64,
    /// Recorder flash pages programmed per frame recorded — the write
    /// amplification of the observability tier.
    pub write_amp: f64,
    /// The `fleet status` crash triage line.
    pub summary: String,
    /// True when `forensics.crashes == 0` failed (it must).
    pub verdict_reflects_crashes: bool,
    /// Concatenated per-victim forensics JSON, sorted by token id —
    /// the cross-worker / cross-policy determinism fingerprint.
    pub forensics_fp: String,
    /// Wall-clock of the whole cell, seconds.
    pub elapsed_s: f64,
}

/// Crash one token mid-aggregation-round and post-mortem it: returns
/// the recovered PDS (forensics attached) after the seeded power loss.
fn crash_one(cfg: &FleetConfig, query: &GroupByQuery, i: usize) -> Pds {
    let mut pds = build_token(cfg, &query.domain, i);
    let ctx = query.context();
    // One clean aggregation round first, so the durable timeline has a
    // contribution + commit + sync prefix to recover verbatim.
    pds.group_contribution(
        &ctx,
        &query.table,
        &query.group_column,
        &query.measure_column,
    )
    .expect("contribution");
    pds.commit().expect("commit");
    pds.sync().expect("sync");
    // Arm the seeded cut, then keep running rounds until the lights go
    // out mid-operation.
    let mut rng = derived_rng(cfg.seed, TAG_CRASH, i as u64);
    let cut = rng.gen_range(2..48);
    pds.token()
        .flash()
        .inject_faults(FaultPlan::new(cfg.seed ^ i as u64).power_loss_after(cut));
    let mut day = 1000;
    loop {
        assert!(day < 20_000, "fault plan never fired for token {i}");
        let round = pds
            .ingest_bank(
                day,
                &query.domain[day as usize % query.domain.len()],
                100,
                "shop",
            )
            .and_then(|()| pds.commit().map(|_| ()))
            .and_then(|()| pds.sync());
        if round.is_err() {
            break;
        }
        day += 1;
    }
    let (pds, _report) = pds.reopen().expect("post-crash reopen");
    pds
}

/// One seeded victim's post-mortem JSON — the CI forensics artifact
/// (`report --forensics-json FILE`). Deliberately tiny (one token, one
/// crash) so it runs in the smoke tier; the seed is fixed, so the
/// artifact is bit-identical across runs and machines.
pub fn forensics_json() -> String {
    let mut cfg = FleetConfig::new(12, 1, 0xE19);
    cfg.partition_size = 8;
    let query = GroupByQuery::bank_by_category();
    let pds = crash_one(&cfg, &query, 0);
    pds.forensics().expect("forensics after reopen").to_json()
}

/// Run one cell: aggregation at the given shape, then the crash storm.
pub fn measure(tokens: usize, workers: usize, evict: EvictPolicy) -> E19Point {
    let started = std::time::Instant::now();
    let mut tracker = DeltaTracker::new();
    let _ = tracker.take(pds_obs::metrics::global());

    let mut cfg = FleetConfig::new(tokens, workers, 0xE19);
    cfg.partition_size = 8;
    cfg.resident_cap = Some((tokens / 2).max(4));
    cfg.evict = evict;
    let query = GroupByQuery::bank_by_category();
    let mut fleet = build_fleet(&cfg, &query).expect("fleet build");
    let rep = fleet_secure_aggregation(
        &cfg,
        &query,
        &mut fleet,
        SsiThreat::HonestButCurious,
        OnTamper::Abort,
    )
    .expect("fleet aggregation");

    // The storm: every 3rd token is a victim. Victims replay their
    // round on deterministically rebuilt state, so the forensics are a
    // pure function of the seed — worker count cannot perturb them.
    let victims: Vec<usize> = (0..tokens).step_by(3).collect();
    let mut bus = MailboxBus::new(BusConfig::reliable(cfg.seed ^ 0xF0));
    let mut collector = Collector::new(TelemetryConfig::default());
    let mut forensics: Vec<(u64, String)> = Vec::new();
    let mut frames_recovered = 0u64;
    for &i in &victims {
        let pds = crash_one(&cfg, &query, i);
        let f = pds.forensics().expect("forensics after reopen");
        frames_recovered += f.frames_recovered;
        forensics.push((f.token, f.to_json()));
        assert!(mail_forensics(&pds, i, &mut bus), "victim had no digest");
    }
    bus.run_until_quiet(100_000);
    collector.drain_bus(&mut bus);

    // Fold the cell's own metric increments (sched.*, blackbox.*, …)
    // into the same rollup the digests landed in, then ask for the
    // fleet verdict.
    let delta = tracker.take(pds_obs::metrics::global());
    collector.fold(&TelemetryMsg {
        source: 0xFEED,
        tick: bus.now(),
        delta,
    });
    let health = collector.health(&HealthEngine::standard());
    let verdict_reflects_crashes = health
        .verdicts
        .iter()
        .any(|v| v.rule == "forensics.crashes == 0" && !v.pass);

    let total = collector.total();
    let frames_written = total.counter("blackbox.frames_written").max(1);
    let write_amp = total.counter("blackbox.pages_flushed") as f64 / frames_written as f64;

    forensics.sort();
    let forensics_fp = forensics
        .into_iter()
        .map(|(_, j)| j)
        .collect::<Vec<_>>()
        .join("\n");

    E19Point {
        tokens,
        workers,
        evict,
        exact: rep.result == rep.expected,
        crashed: victims.len(),
        digests: collector.stats().digests_folded,
        deduped: collector.stats().digests_deduped,
        frames_recovered,
        write_amp,
        summary: collector.crash_summary(),
        verdict_reflects_crashes,
        forensics_fp,
        elapsed_s: started.elapsed().as_secs_f64(),
    }
}

/// Regenerate the E19 table.
pub fn run() -> Table {
    let tokens = env_u64("PDS_E19_TOKENS", 96) as usize;
    let max_threads = env_u64("PDS_E19_MAX_THREADS", 8).max(1) as usize;

    let mut t = Table::new(
        &format!(
            "E19 — crash-storm forensics, {tokens} tokens \
             (seeded power loss mid-round; black-box triage at the collector)"
        ),
        &[
            "policy",
            "workers",
            "time (s)",
            "crashed",
            "digests",
            "frames",
            "write amp",
            "exact",
            "identical",
            "verdict",
        ],
    );

    let mut cells: Vec<(EvictPolicy, usize)> = Vec::new();
    for w in [1, 2, max_threads] {
        if !cells.iter().any(|&(_, cw)| cw == w) {
            cells.push((EvictPolicy::Rebuild, w));
        }
    }
    cells.push((EvictPolicy::Hibernate, max_threads.min(2)));

    let mut reference_fp: Option<String> = None;
    let mut last_summary = String::new();
    for (evict, workers) in cells {
        let p = measure(tokens, workers, evict);
        let identical = match &reference_fp {
            None => {
                reference_fp = Some(p.forensics_fp.clone());
                true
            }
            Some(fp) => *fp == p.forensics_fp,
        };
        pds_obs::metrics::gauge(&format!("fleet.e19.crashed.w{workers}")).set(p.crashed as u64);
        pds_obs::metrics::gauge(&format!("fleet.e19.digests.w{workers}")).set(p.digests);
        pds_obs::metrics::gauge(&format!("fleet.e19.frames_recovered.w{workers}"))
            .set(p.frames_recovered);
        pds_obs::metrics::gauge(&format!("fleet.e19.write_amp_x1000.w{workers}"))
            .set((p.write_amp * 1000.0) as u64);
        last_summary = p.summary.clone();
        t.row(vec![
            format!("{:?}", p.evict),
            p.workers.to_string(),
            format!("{:.3}", p.elapsed_s),
            p.crashed.to_string(),
            p.digests.to_string(),
            p.frames_recovered.to_string(),
            format!("{:.3}", p.write_amp),
            if p.exact { "yes" } else { "NO" }.to_string(),
            if identical { "yes" } else { "NO" }.to_string(),
            if p.verdict_reflects_crashes {
                "crashes flagged"
            } else {
                "MISSED"
            }
            .to_string(),
        ]);
    }
    for line in last_summary.lines() {
        t.note(line);
    }
    t.note(
        "identical = concatenated per-victim forensics JSON (timeline, cause, losses) \
         bit-identical to the first cell — across worker counts and eviction policies",
    );
    t.note(
        "write amp = recorder pages programmed per frame recorded (one sync per round \
         is the worst case); verdict = the standard health engine flags the crash storm",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forensics_are_bit_identical_across_workers_and_policies() {
        let a = measure(12, 1, EvictPolicy::Rebuild);
        let b = measure(12, 2, EvictPolicy::Rebuild);
        let c = measure(12, 2, EvictPolicy::Hibernate);
        assert!(a.exact && b.exact && c.exact);
        assert!(!a.forensics_fp.is_empty());
        assert_eq!(a.forensics_fp, b.forensics_fp, "worker count leaked in");
        assert_eq!(a.forensics_fp, c.forensics_fp, "eviction policy leaked in");
    }

    #[test]
    fn the_storm_is_triaged_exactly_once_and_flagged() {
        let p = measure(12, 2, EvictPolicy::Rebuild);
        assert_eq!(p.crashed, 4, "every 3rd of 12 tokens");
        assert_eq!(p.digests, p.crashed as u64, "exactly-once at the collector");
        assert!(p.verdict_reflects_crashes, "crash SLO must trip");
        assert!(p.summary.contains("4 token(s) crashed"), "{}", p.summary);
        assert!(p.write_amp < 1.0, "write amp {} not bounded", p.write_amp);
        assert!(p.frames_recovered > 0);
    }
}

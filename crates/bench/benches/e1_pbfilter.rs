//! E1 timing: PBFilter lookup vs full table scan.

use pds_bench::e1_pbfilter::build_customer;
use pds_bench::harness::{criterion_group, criterion_main, Criterion};
use pds_db::Value;
use pds_flash::{Flash, FlashGeometry};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_pbfilter");
    g.sample_size(20);
    let flash = Flash::new(FlashGeometry::new(2048, 64, 4096));
    let (table, index) = build_customer(&flash, 20_000, 500);
    let probe = "city-0250";

    g.bench_function("full_table_scan_20k", |b| {
        b.iter(|| {
            let mut n = 0usize;
            table
                .scan(|_, row| {
                    if row[2] == Value::str(probe) {
                        n += 1;
                    }
                })
                .unwrap();
            n
        })
    });
    g.bench_function("pbfilter_lookup_20k", |b| {
        b.iter(|| index.lookup(probe.as_bytes()).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

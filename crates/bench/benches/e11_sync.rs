//! E11 timing: one full badge tour over ten patients.

use pds_bench::e11_sync::measure;
use pds_bench::harness::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_sync");
    g.sample_size(10);
    g.bench_function("full_tour_10_patients", |b| b.iter(|| measure(10, 10, 21)));
    g.bench_function("partial_tours_10_patients_3_per_tour", |b| {
        b.iter(|| measure(10, 3, 21))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E8 timing: homomorphic vs symmetric vs plaintext aggregation.

use pds_bench::harness::{criterion_group, criterion_main, Criterion};
use pds_crypto::{Paillier, SymmetricKey};
use pds_obs::rng::SeedableRng;
use pds_obs::rng::StdRng;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_fhe_cost");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(1);
    let values: Vec<u64> = (0..32).map(|i| i * 31 + 7).collect();

    g.bench_function("plaintext_sum_32", |b| {
        b.iter(|| {
            values
                .iter()
                .copied()
                .map(std::hint::black_box)
                .sum::<u64>()
        })
    });

    let key = SymmetricKey::from_seed(b"e8");
    let cts: Vec<_> = values
        .iter()
        .map(|v| key.encrypt_prob(&v.to_le_bytes(), &mut rng))
        .collect();
    g.bench_function("token_decrypt_sum_32", |b| {
        b.iter(|| {
            cts.iter()
                .map(|ct| {
                    let p = key.decrypt(ct).unwrap();
                    u64::from_le_bytes(p[..8].try_into().unwrap())
                })
                .sum::<u64>()
        })
    });

    for bits in [512usize, 1024] {
        let (pk, sk) = Paillier::keygen(bits, &mut rng);
        g.bench_function(format!("paillier{bits}_encrypt_fold_sum_32"), |b| {
            b.iter(|| {
                let mut acc = pk.neutral();
                for &v in &values {
                    acc = pk.add(&acc, &pk.encrypt_u64(v, &mut rng));
                }
                sk.decrypt_u64(&acc)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

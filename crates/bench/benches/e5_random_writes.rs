//! E5 timing: insertion streams, log-structured vs in-place.

use pds_bench::e5_random_writes::InPlaceIndex;
use pds_bench::harness::{criterion_group, criterion_main, Criterion};
use pds_db::PBFilter;
use pds_flash::{Flash, FlashGeometry};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_random_writes");
    g.sample_size(10);
    let n = 2000u32;

    g.bench_function("log_structured_2k_inserts", |b| {
        b.iter(|| {
            let f = Flash::new(FlashGeometry::new(2048, 64, 2048));
            let mut pbf = PBFilter::new(&f);
            for i in 0..n {
                let key = (i.wrapping_mul(2654435761)) % n;
                pbf.insert(&key.to_be_bytes(), i).unwrap();
            }
            pbf.flush().unwrap();
            f.stats().page_programs
        })
    });
    g.bench_function("in_place_2k_inserts", |b| {
        b.iter(|| {
            let f = Flash::new(FlashGeometry::new(2048, 64, 2048));
            let mut idx = InPlaceIndex::new(&f);
            for i in 0..n {
                let key = (i.wrapping_mul(2654435761)) % n;
                idx.insert(key);
            }
            f.stats().block_erases
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

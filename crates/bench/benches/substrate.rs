//! Substrate microbenchmarks: the primitive costs everything else is
//! built from — flash page I/O, log appends, the hash/PRF, symmetric and
//! homomorphic crypto, bignum arithmetic, Bloom filters.

use pds_bench::harness::{criterion_group, criterion_main, Criterion, Throughput};
use pds_crypto::{sha256, BigUint, BloomFilter, Paillier, SymmetricKey};
use pds_flash::{Flash, FlashGeometry};
use pds_obs::rng::SeedableRng;
use pds_obs::rng::StdRng;

fn flash_benches(c: &mut Criterion) {
    use pds_bench::harness::BatchSize;
    let mut g = c.benchmark_group("substrate_flash");
    g.sample_size(30);
    let page = vec![0xA5u8; 2048];
    // Appends exhaust a finite chip, so each measured batch writes 1000
    // records into a fresh log (the chip is created in setup, untimed).
    g.throughput(Throughput::Elements(1000));
    g.bench_function("log_append_1000x64B_records", |b| {
        b.iter_batched(
            || Flash::new(FlashGeometry::new(2048, 64, 256)),
            |flash| {
                let mut log = flash.new_log();
                for _ in 0..1000 {
                    log.append(&page[..64]).unwrap();
                }
                log.flush().unwrap();
            },
            BatchSize::SmallInput,
        )
    });
    let flash = Flash::new(FlashGeometry::new(2048, 64, 1024));
    let mut w = flash.new_log();
    for _ in 0..100 {
        w.append(&page[..64]).unwrap();
    }
    let sealed = w.seal().unwrap();
    let mut buf = vec![0u8; 2048];
    g.throughput(Throughput::Elements(1));
    g.bench_function("read_page_2KB", |b| {
        b.iter(|| sealed.read_raw_page(0, &mut buf).unwrap())
    });
    g.finish();
}

fn crypto_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_crypto");
    g.sample_size(30);
    let data = vec![0x5Au8; 4096];
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("sha256_4KB", |b| b.iter(|| sha256(&data)));
    let key = SymmetricKey::from_seed(b"bench");
    let mut rng = StdRng::seed_from_u64(1);
    g.bench_function("sym_encrypt_prob_4KB", |b| {
        b.iter(|| key.encrypt_prob(&data, &mut rng))
    });
    let ct = key.encrypt_prob(&data, &mut rng);
    g.bench_function("sym_decrypt_4KB", |b| b.iter(|| key.decrypt(&ct).unwrap()));
    g.finish();

    let mut g = c.benchmark_group("substrate_paillier");
    g.sample_size(10);
    let (pk, sk) = Paillier::keygen(512, &mut rng);
    g.bench_function("paillier512_encrypt", |b| {
        b.iter(|| pk.encrypt_u64(12345, &mut rng))
    });
    let a = pk.encrypt_u64(1, &mut rng);
    let bb = pk.encrypt_u64(2, &mut rng);
    g.bench_function("paillier512_add", |b| b.iter(|| pk.add(&a, &bb)));
    g.bench_function("paillier512_decrypt", |b| b.iter(|| sk.decrypt_u64(&a)));
    g.finish();
}

fn num_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_bignum");
    g.sample_size(20);
    let mut rng = StdRng::seed_from_u64(2);
    let a = BigUint::rand_bits(1024, &mut rng);
    let b512 = BigUint::rand_bits(512, &mut rng);
    let m = BigUint::rand_bits(1024, &mut rng);
    g.bench_function("mul_1024x512", |b| b.iter(|| a.mul(&b512)));
    g.bench_function("divrem_1024_by_512", |b| b.iter(|| a.divrem(&b512)));
    let e = BigUint::from_u64(65537);
    g.bench_function("modexp_1024_e65537", |b| b.iter(|| a.mod_exp(&e, &m)));
    g.finish();

    let mut g = c.benchmark_group("substrate_bloom");
    g.sample_size(30);
    let mut bf = BloomFilter::per_key_16bits(1000);
    for i in 0..1000u32 {
        bf.insert(&i.to_le_bytes());
    }
    g.bench_function("bloom_probe", |b| {
        b.iter(|| bf.maybe_contains(&777u32.to_le_bytes()))
    });
    g.finish();
}

criterion_group!(benches, flash_benches, crypto_benches, num_benches);
criterion_main!(benches);

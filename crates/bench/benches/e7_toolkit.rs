//! E7 timing: the [CKV+02] toolkit primitives.

use pds_bench::harness::{criterion_group, criterion_main, Criterion};
use pds_crypto::CommutativeGroup;
use pds_global::toolkit::{
    secure_intersection_size, secure_scalar_product, secure_set_union, secure_sum,
};
use pds_obs::rng::SeedableRng;
use pds_obs::rng::StdRng;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_toolkit");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(1);
    let values: Vec<u64> = (0..64).collect();
    g.bench_function("secure_sum_64_parties", |b| {
        b.iter(|| secure_sum(&values, 1 << 40, &mut rng))
    });

    let group = CommutativeGroup::test_params();
    let sets: Vec<Vec<Vec<u8>>> = (0..5)
        .map(|p| {
            (0..8)
                .map(|i| format!("item-{}", (p + i) % 10).into_bytes())
                .collect()
        })
        .collect();
    g.bench_function("set_union_5x8", |b| {
        b.iter(|| secure_set_union(&sets, &group, &mut rng))
    });
    g.bench_function("intersection_size_5x8", |b| {
        b.iter(|| secure_intersection_size(&sets, &group, &mut rng))
    });

    let x: Vec<u64> = (0..32).collect();
    let y: Vec<u64> = (0..32).rev().collect();
    g.bench_function("scalar_product_32", |b| {
        b.iter(|| secure_scalar_product(&x, &y, 256, &mut rng))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E12 timing: delay-tolerant delivery runs at two densities.

use pds_bench::e12_folkis::measure;
use pds_bench::harness::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_folkis");
    g.sample_size(10);
    g.bench_function("dtn_dense_160_on_25x25", |b| {
        b.iter(|| measure(160, 25, 0, 2000, 31))
    });
    g.bench_function("dtn_sparse_40_on_25x25", |b| {
        b.iter(|| measure(40, 25, 0, 2000, 31))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

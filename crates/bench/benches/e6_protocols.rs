//! E6 timing: the three [TNP14\] protocols end to end at N = 100.

use pds_bench::harness::{criterion_group, criterion_main, Criterion};
use pds_global::histogram::{histogram_based, BucketMap};
use pds_global::noise::{noise_based, NoiseStrategy};
use pds_global::secure_agg::{secure_aggregation, OnTamper};
use pds_global::{GroupByQuery, Population, Ssi};
use pds_obs::rng::SeedableRng;
use pds_obs::rng::StdRng;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_protocols");
    g.sample_size(10);
    let q = GroupByQuery::bank_by_category();
    let mut rng = StdRng::seed_from_u64(1);
    let mut pop = Population::synthetic(100, &q.domain, &mut rng).unwrap();

    g.bench_function("secure_agg_n100", |b| {
        b.iter(|| {
            let ssi = Ssi::honest(1);
            secure_aggregation(&mut pop, &q, &ssi, 32, OnTamper::Abort, &mut rng).unwrap()
        })
    });
    g.bench_function("noise_complementary_n100", |b| {
        b.iter(|| {
            let ssi = Ssi::honest(2);
            noise_based(&mut pop, &q, &ssi, NoiseStrategy::Complementary, &mut rng).unwrap()
        })
    });
    let map = BucketMap::equi_width(&q.domain, 3);
    g.bench_function("histogram3_n100", |b| {
        b.iter(|| {
            let ssi = Ssi::honest(3);
            histogram_based(&mut pop, &q, &ssi, &map, &mut rng).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E9 timing: MAC-authenticated collection and spot checks.

use pds_bench::harness::{criterion_group, criterion_main, Criterion};
use pds_crypto::SymmetricKey;
use pds_global::detection::CheckedChannel;
use pds_obs::rng::SeedableRng;
use pds_obs::rng::StdRng;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_detection");
    g.sample_size(20);
    let key = SymmetricKey::from_seed(b"e9");
    g.bench_function("collect_500_authenticated_tuples", |b| {
        b.iter(|| CheckedChannel::collect(&key, 500))
    });
    let ch = CheckedChannel::collect(&key, 500);
    let mut rng = StdRng::seed_from_u64(1);
    g.bench_function("spot_check_500_at_5pct", |b| {
        b.iter(|| ch.spot_check(&key, 0.05, &mut rng))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E3 timing: embedded search queries and indexing throughput.

use pds_bench::e3_search::build;
use pds_bench::harness::{criterion_group, criterion_main, Criterion};
use pds_search::DfStrategy;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_search");
    g.sample_size(20);
    let (_f, _ram, engine, _oracle) = build(2000, DfStrategy::TwoPass);
    g.bench_function("query_1kw_2000docs_twopass", |b| {
        b.iter(|| engine.search(&["w10"], 10).unwrap())
    });
    g.bench_function("query_3kw_2000docs_twopass", |b| {
        b.iter(|| engine.search(&["w10", "w47", "w84"], 10).unwrap())
    });
    let (_f2, _ram2, engine_dict, _o2) = build(2000, DfStrategy::RamDictionary);
    g.bench_function("query_3kw_2000docs_ramdict", |b| {
        b.iter(|| engine_dict.search(&["w10", "w47", "w84"], 10).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E10 timing: Mondrian k-anonymization and the encrypted MetaP flow.

use pds_bench::harness::{criterion_group, criterion_main, Criterion};
use pds_crypto::SymmetricKey;
use pds_global::ppdp::{encrypt_records, mondrian, publish_anonymized, synthetic_records};
use pds_obs::rng::SeedableRng;
use pds_obs::rng::StdRng;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_ppdp");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(1);
    let records = synthetic_records(2000, &mut rng);
    g.bench_function("mondrian_k10_2000", |b| b.iter(|| mondrian(&records, 10)));
    g.bench_function("mondrian_k50_2000", |b| b.iter(|| mondrian(&records, 50)));

    let key = SymmetricKey::from_seed(b"e10");
    let encrypted = encrypt_records(&records, &key, &mut rng);
    g.bench_function("metap_decrypt_anonymize_k10_2000", |b| {
        b.iter(|| publish_anonymized(&encrypted, &key, 10).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E4 timing: climbing-index SPJ vs the index-free baseline.

use pds_bench::harness::{criterion_group, criterion_main, Criterion};
use pds_db::climbing::{execute_spj, execute_spj_naive, TjoinIndex, TselectIndex};
use pds_db::tpcd::{TpcdConfig, TpcdData};
use pds_db::Value;
use pds_flash::{Flash, FlashGeometry};
use pds_mcu::RamBudget;
use pds_obs::rng::SeedableRng;
use pds_obs::rng::StdRng;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_spj");
    g.sample_size(10);
    let flash = Flash::new(FlashGeometry::new(2048, 64, 16384));
    let ram = RamBudget::new(128 * 1024);
    let mut rng = StdRng::seed_from_u64(23);
    let data = TpcdData::generate(&flash, &TpcdConfig::scale(8), &mut rng).unwrap();
    let tree = data.schema_tree().unwrap();
    let tables = data.tables();
    let tjoin = TjoinIndex::build(&flash, &tree, &tables).unwrap();
    let seg = TselectIndex::build(&flash, &ram, &tree, &tables, "CUSTOMER", "mktsegment").unwrap();
    let sup = TselectIndex::build(&flash, &ram, &tree, &tables, "SUPPLIER", "name").unwrap();

    g.bench_function("climbing_spj_sf8", |b| {
        b.iter(|| {
            execute_spj(
                &tree,
                &tables,
                &tjoin,
                &[
                    (&seg, Value::str("HOUSEHOLD")),
                    (&sup, Value::str("SUPPLIER-1")),
                ],
            )
            .unwrap()
        })
    });
    let cust = tree.table_index("CUSTOMER").unwrap();
    let supp = tree.table_index("SUPPLIER").unwrap();
    g.bench_function("naive_spj_sf8", |b| {
        b.iter(|| {
            execute_spj_naive(
                &tree,
                &tables,
                &[
                    (cust, 3, Value::str("HOUSEHOLD")),
                    (supp, 1, Value::str("SUPPLIER-1")),
                ],
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E2 timing: sequential-index lookup, tree lookup, and the
//! reorganization itself.

use pds_bench::harness::{criterion_group, criterion_main, Criterion};
use pds_db::reorg::reorganize;
use pds_db::PBFilter;
use pds_flash::{Flash, FlashGeometry};
use pds_mcu::RamBudget;

fn build(keys: u32) -> (Flash, RamBudget, PBFilter) {
    let flash = Flash::new(FlashGeometry::new(2048, 64, 8192));
    let ram = RamBudget::new(64 * 1024);
    let mut pbf = PBFilter::new(&flash);
    let domain = keys / 20;
    for i in 0..keys {
        pbf.insert(&(i % domain).to_be_bytes(), i).unwrap();
    }
    pbf.flush().unwrap();
    (flash, ram, pbf)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_reorg");
    g.sample_size(10);
    let (flash, ram, pbf) = build(50_000);
    let probe = 1250u32.to_be_bytes();

    g.bench_function("sequential_lookup_50k", |b| {
        b.iter(|| pbf.lookup(&probe).unwrap())
    });
    let tree = reorganize(&flash, &ram, &pbf).unwrap();
    g.bench_function("tree_lookup_50k", |b| {
        b.iter(|| tree.lookup(&probe).unwrap())
    });
    g.bench_function("reorganize_50k", |b| {
        b.iter(|| {
            let t = reorganize(&flash, &ram, &pbf).unwrap();
            t.reclaim();
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Hierarchical span tracing.
//!
//! A [`SpanGuard`] marks a region of work; guards nest into a per-thread
//! stack, and when a root span finishes its whole tree is moved into a
//! small ring of recently finished traces. Instrumented layers attach
//! attributes (I/O deltas, RAM peaks, plan choices) to the current span;
//! [`QueryTrace`] then renders a finished tree as the per-query "explain"
//! report the tutorial's cost claims are checked against.
//!
//! The embedded stack is single-threaded (one secure MCU), so the
//! thread-local path is exact, not approximate — and it is kept intact.
//! For *fleet* runs, where one causal protocol round spans many worker
//! threads, a second collection path exists: a thread that sets a
//! [`TraceContext`] (trace id + parent span id) has its finished root
//! spans routed into a per-worker buffer, drained into a process-wide
//! sink keyed by trace id. The fleet driver then stitches the per-token
//! trees into one [`FleetTrace`] per aggregation/sync round. Stitched
//! trees are timing-stripped ([`FinishedSpan::strip_timing`]) so the
//! assembled trace is bit-identical at any worker count; causal time is
//! measured in bus ticks, not wall-clock.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::{write_f64, write_str};

/// A span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer (counts, bytes, pages).
    U64(u64),
    /// Float (ratios, scores).
    F64(f64),
    /// Short label (plan names, decisions).
    Str(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl AttrValue {
    /// Integer content, if any.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            AttrValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// String content, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct ActiveSpan {
    name: String,
    start: Instant,
    attrs: Vec<(String, AttrValue)>,
    children: Vec<FinishedSpan>,
}

/// A completed span with its completed children.
#[derive(Debug, Clone)]
pub struct FinishedSpan {
    /// Span name (`layer.operation`, e.g. `db.select`).
    pub name: String,
    /// Wall-clock duration.
    pub duration_ns: u64,
    /// Attributes set while the span was active.
    pub attrs: Vec<(String, AttrValue)>,
    /// Completed child spans, in completion order.
    pub children: Vec<FinishedSpan>,
}

impl FinishedSpan {
    /// The attribute `key` on this span, if set.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Integer attribute shorthand.
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        self.attr(key).and_then(AttrValue::as_u64)
    }

    /// The first descendant span (depth-first, self included) named `name`.
    pub fn find(&self, name: &str) -> Option<&FinishedSpan> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Total of integer attribute `key` over the tree: this span's value
    /// if it carries the attribute (a span's value is the delta over its
    /// whole subtree), otherwise the sum of its children's totals.
    pub fn total(&self, key: &str) -> u64 {
        if let Some(v) = self.attr_u64(key) {
            return v;
        }
        self.children.iter().map(|c| c.total(key)).sum()
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.name);
        out.push_str(&format!(" [{:.3} ms]", self.duration_ns as f64 / 1e6));
        for (k, v) in &self.attrs {
            match v {
                AttrValue::U64(n) => out.push_str(&format!(" {k}={n}")),
                AttrValue::F64(f) => out.push_str(&format!(" {k}={f:.3}")),
                AttrValue::Str(s) => out.push_str(&format!(" {k}={s}")),
            }
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }

    /// Serialize the tree as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    /// Zero every wall-clock duration in the tree, recursively. Stitched
    /// fleet traces are assembled from spans produced on arbitrary worker
    /// threads; stripping timing makes the assembled tree a pure function
    /// of the seed (causal time lives in `bus.*` tick attributes instead).
    pub fn strip_timing(&mut self) {
        self.duration_ns = 0;
        for c in &mut self.children {
            c.strip_timing();
        }
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"span\":");
        write_str(out, &self.name);
        out.push_str(&format!(",\"duration_ns\":{}", self.duration_ns));
        for (k, v) in &self.attrs {
            out.push(',');
            write_str(out, k);
            out.push(':');
            match v {
                AttrValue::U64(n) => out.push_str(&n.to_string()),
                AttrValue::F64(f) => write_f64(out, *f),
                AttrValue::Str(s) => write_str(out, s),
            }
        }
        if !self.children.is_empty() {
            out.push_str(",\"children\":[");
            for (i, c) in self.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                c.write_json(out);
            }
            out.push(']');
        }
        out.push('}');
    }
}

const ROOT_RING_CAP: usize = 16;

/// Per-worker contribution buffers flush to the shared sink once they
/// hold this many spans (and always at [`flush_contributions`]).
const CONTRIB_BUF_CAP: usize = 32;

thread_local! {
    static STACK: RefCell<Vec<ActiveSpan>> = const { RefCell::new(Vec::new()) };
    static ROOTS: RefCell<VecDeque<FinishedSpan>> = const { RefCell::new(VecDeque::new()) };
    static CONTEXT: Cell<Option<TraceContext>> = const { Cell::new(None) };
    static CONTRIB: RefCell<Vec<(TraceContext, FinishedSpan)>> = const { RefCell::new(Vec::new()) };
}

/// Identity of the distributed trace a piece of work belongs to: which
/// fleet trace, and which span of it is the causal parent. Carried in
/// every `MailboxBus` envelope and set by `TokenPool` workers for the
/// duration of a phase job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceContext {
    /// Fleet-trace id (derived from the run seed, stable across runs).
    pub trace_id: u64,
    /// Span id of the causal parent (the fleet driver's phase span).
    pub parent_span: u64,
}

/// Contributed spans of one trace: `(parent span id, finished root)`.
type TraceSink = BTreeMap<u64, Vec<(u64, FinishedSpan)>>;

/// The process-wide sink of contributed spans: trace id → every
/// `(parent span id, finished root)` any worker produced under that
/// trace's context. Drained by the fleet driver at phase barriers.
fn sink() -> &'static Mutex<TraceSink> {
    static SINK: OnceLock<Mutex<TraceSink>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Set (or clear) this thread's distributed-trace context. While a
/// context is set, finished *root* spans are contributed to the shared
/// sink instead of the thread-local ring — the single-MCU embedded path
/// (no context) is untouched.
pub fn set_context(ctx: Option<TraceContext>) {
    CONTEXT.with(|c| c.set(ctx));
}

/// This thread's distributed-trace context, if any.
pub fn context() -> Option<TraceContext> {
    CONTEXT.with(Cell::get)
}

/// Drain this thread's contribution buffer into the shared sink. Worker
/// threads call this at the end of each phase job, so by the time the
/// phase barrier releases the driver, every span is visible.
pub fn flush_contributions() {
    let batch: Vec<(TraceContext, FinishedSpan)> =
        CONTRIB.with(|b| std::mem::take(&mut *b.borrow_mut()));
    if batch.is_empty() {
        return;
    }
    let mut sink = sink()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for (ctx, span) in batch {
        sink.entry(ctx.trace_id)
            .or_default()
            .push((ctx.parent_span, span));
    }
}

/// Remove and return everything contributed under `trace_id`, as
/// `(parent span id, span)` pairs in arbitrary arrival order — the
/// stitcher must sort by a deterministic key (parent span id plus a
/// caller-set attribute like `token`), never by arrival.
pub fn drain_trace(trace_id: u64) -> Vec<(u64, FinishedSpan)> {
    sink()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .remove(&trace_id)
        .unwrap_or_default()
}

/// RAII guard for one span. Dropping the guard finishes the span; if
/// inner guards are still alive (an early return skipped them) they are
/// folded into this span first, so the tree never corrupts.
pub struct SpanGuard {
    depth: usize,
}

/// Open a span as a child of the innermost active span.
pub fn span(name: &str) -> SpanGuard {
    STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.push(ActiveSpan {
            name: name.to_string(),
            start: Instant::now(),
            attrs: Vec::new(),
            children: Vec::new(),
        });
        SpanGuard { depth: s.len() - 1 }
    })
}

impl SpanGuard {
    /// Set (or overwrite) an attribute on this span.
    pub fn set(&self, key: &str, value: impl Into<AttrValue>) {
        let value = value.into();
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(sp) = s.get_mut(self.depth) {
                if let Some(slot) = sp.attrs.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    sp.attrs.push((key.to_string(), value));
                }
            }
        });
    }

    /// Add to an integer attribute (missing counts as 0).
    pub fn add(&self, key: &str, delta: u64) {
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(sp) = s.get_mut(self.depth) {
                if let Some((_, AttrValue::U64(v))) = sp.attrs.iter_mut().find(|(k, _)| k == key) {
                    *v += delta;
                } else {
                    sp.attrs.push((key.to_string(), AttrValue::U64(delta)));
                }
            }
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Fold any still-open inner spans (leaked by early return or
            // guard reordering), then this one.
            while s.len() > self.depth {
                let active = s.pop().expect("len checked");
                let finished = FinishedSpan {
                    name: active.name,
                    duration_ns: active.start.elapsed().as_nanos() as u64,
                    attrs: active.attrs,
                    children: active.children,
                };
                if let Some(parent) = s.last_mut() {
                    parent.children.push(finished);
                } else if let Some(ctx) = context() {
                    // Flush *before* pushing so the freshest root is
                    // always still in the local buffer (trace() relies
                    // on that to hand the span back to its caller).
                    if CONTRIB.with(|b| b.borrow().len() + 1 >= CONTRIB_BUF_CAP) {
                        flush_contributions();
                    }
                    CONTRIB.with(|b| b.borrow_mut().push((ctx, finished)));
                } else {
                    ROOTS.with(|r| {
                        let mut r = r.borrow_mut();
                        if r.len() == ROOT_RING_CAP {
                            r.pop_front();
                        }
                        r.push_back(finished);
                    });
                }
            }
        });
    }
}

/// Remove and return the most recently finished root span of this thread.
pub fn take_last_root() -> Option<FinishedSpan> {
    ROOTS.with(|r| r.borrow_mut().pop_back())
}

/// Most recently finished root spans of this thread, oldest first.
pub fn recent_roots() -> Vec<FinishedSpan> {
    ROOTS.with(|r| r.borrow().iter().cloned().collect())
}

/// Run `f` under a root-or-child span named `name` and return its result
/// together with the finished span tree. Only exact when `name` opens at
/// the top level of the thread's stack; otherwise the span is recorded in
/// its parent and a clone is returned.
pub fn trace<T>(name: &str, f: impl FnOnce() -> T) -> (T, FinishedSpan) {
    let was_root = STACK.with(|s| s.borrow().is_empty());
    let guard = span(name);
    let out = f();
    drop(guard);
    // Each arm re-reads the span the dropped guard just deposited. If
    // another thread corrupted the shared state that deposit is absent;
    // degrade to an empty span of the right name — tracing must never
    // take the engine down with it.
    let fallback = || FinishedSpan {
        name: name.to_string(),
        duration_ns: 0,
        attrs: Vec::new(),
        children: Vec::new(),
    };
    let finished = if was_root {
        if context().is_some() {
            // The root was contributed to the distributed sink; hand the
            // caller a clone without un-contributing it.
            CONTRIB
                .with(|b| b.borrow().last().map(|(_, s)| s.clone()))
                .unwrap_or_else(fallback)
        } else {
            take_last_root().unwrap_or_else(fallback)
        }
    } else {
        STACK.with(|s| {
            s.borrow()
                .last()
                .and_then(|p| p.children.last().cloned())
                .unwrap_or_else(fallback)
        })
    };
    (out, finished)
}

/// Outcome of checking one traced quantity against a claimed budget.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetCheck {
    /// Attribute name checked.
    pub name: String,
    /// Observed value.
    pub actual: u64,
    /// Claimed budget.
    pub budget: u64,
    /// `actual <= budget`.
    pub within: bool,
}

/// A finished per-query trace: the explain report of one gateway request.
///
/// Instrumented layers set the conventional attributes
/// `flash.page_reads`, `flash.page_programs`, `flash.block_erases`,
/// `mcu.ram.peak_bytes` and `policy.decision`; this wrapper names them.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    /// The root span of the request.
    pub root: FinishedSpan,
}

impl QueryTrace {
    /// Wrap a finished root span.
    pub fn new(root: FinishedSpan) -> Self {
        QueryTrace { root }
    }

    /// Pages read during the request.
    pub fn page_reads(&self) -> u64 {
        self.root.total("flash.page_reads")
    }

    /// Pages programmed during the request.
    pub fn page_programs(&self) -> u64 {
        self.root.total("flash.page_programs")
    }

    /// Blocks erased during the request.
    pub fn block_erases(&self) -> u64 {
        self.root.total("flash.block_erases")
    }

    /// Peak RAM bytes reserved during the request.
    pub fn peak_ram_bytes(&self) -> u64 {
        self.root.total("mcu.ram.peak_bytes")
    }

    /// Peak RAM in flash-page units (rounded up).
    pub fn peak_ram_pages(&self, page_size: u64) -> u64 {
        if page_size == 0 {
            return 0;
        }
        self.peak_ram_bytes().div_ceil(page_size)
    }

    /// The policy decision recorded by the gateway (`granted`/`denied`).
    pub fn policy_decision(&self) -> Option<&str> {
        self.root
            .find("pds.policy")
            .and_then(|s| s.attr("policy.decision"))
            .and_then(AttrValue::as_str)
    }

    /// Check traced totals against claimed budgets
    /// (`[("flash.page_reads", 17), …]`).
    pub fn check_budgets(&self, budgets: &[(&str, u64)]) -> Vec<BudgetCheck> {
        budgets
            .iter()
            .map(|(name, budget)| {
                let actual = self.root.total(name);
                BudgetCheck {
                    name: name.to_string(),
                    actual,
                    budget: *budget,
                    within: actual <= *budget,
                }
            })
            .collect()
    }

    /// Human-readable explain report: the span tree, then the headline
    /// cost totals in the tutorial's units.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.root.render_into(&mut out, 0);
        out.push_str(&format!(
            "totals: page_reads={} page_programs={} block_erases={} peak_ram_bytes={}\n",
            self.page_reads(),
            self.page_programs(),
            self.block_erases(),
            self.peak_ram_bytes(),
        ));
        out
    }

    /// The trace as one JSON line.
    pub fn to_json(&self) -> String {
        self.root.to_json()
    }
}

/// One phase's slowest delivery chain, in bus ticks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalHop {
    /// Phase span name (`phase.collect`, `phase.reduce.0`, …).
    pub phase: String,
    /// Bus ticks the phase consumed (`bus.ticks`).
    pub ticks: u64,
    /// Message id of the straggler hop (the last delivery of the phase),
    /// if the phase moved any message.
    pub msg: Option<u64>,
    /// Tick the straggler was finally delivered at.
    pub deliver_tick: u64,
    /// Transmission attempts the straggler burned across its hops.
    pub attempts: u64,
    /// Duplicate re-deliveries of the straggler absorbed by dedup.
    pub redeliveries: u64,
}

/// A stitched causal trace of one fleet protocol round: the "explain"
/// report of a distributed run, sibling of [`QueryTrace`].
///
/// Conventions (produced by the fleet stitcher): the root's children are
/// phase spans named `phase.*`, each carrying `bus.tick.start` /
/// `bus.tick.end` / `bus.ticks`. A phase's children are per-token work
/// spans named `token.N` (attribute `token`) — whose own subtrees are the
/// per-token spans the instrumented layers produced — and per-message
/// hop spans named `hop.N` (attributes `msg`, `from`, `to`, `send_tick`,
/// `deliver_tick`, `attempts`, `redeliveries`, `expired`). All timing is
/// stripped: causal time is bus ticks, so the whole tree is bit-identical
/// at any worker count.
#[derive(Debug, Clone)]
pub struct FleetTrace {
    /// The stitched root span of the round.
    pub root: FinishedSpan,
}

impl FleetTrace {
    /// Wrap a stitched root span.
    pub fn new(root: FinishedSpan) -> Self {
        FleetTrace { root }
    }

    /// The phase spans, in protocol order.
    pub fn phases(&self) -> Vec<&FinishedSpan> {
        self.root
            .children
            .iter()
            .filter(|c| c.name.starts_with("phase."))
            .collect()
    }

    /// Total bus ticks across every phase.
    pub fn total_ticks(&self) -> u64 {
        self.phases()
            .iter()
            .map(|p| p.attr_u64("bus.ticks").unwrap_or(0))
            .sum()
    }

    /// The critical path through the round: per phase, the hop whose
    /// delivery landed last (ties broken by lowest message id). The sum
    /// of phase ticks *is* the round's causal length — phases are
    /// barriers, so no work overlaps them.
    pub fn critical_path(&self) -> Vec<CriticalHop> {
        self.phases()
            .iter()
            .map(|p| {
                let mut worst: Option<&FinishedSpan> = None;
                for h in p.children.iter().filter(|c| c.name.starts_with("hop.")) {
                    if h.attr_u64("expired") == Some(1) {
                        continue;
                    }
                    let better = match worst {
                        None => true,
                        Some(w) => {
                            let (ht, wt) = (
                                h.attr_u64("deliver_tick").unwrap_or(0),
                                w.attr_u64("deliver_tick").unwrap_or(0),
                            );
                            ht > wt
                                || (ht == wt
                                    && h.attr_u64("msg").unwrap_or(u64::MAX)
                                        < w.attr_u64("msg").unwrap_or(u64::MAX))
                        }
                    };
                    if better {
                        worst = Some(h);
                    }
                }
                CriticalHop {
                    phase: p.name.clone(),
                    ticks: p.attr_u64("bus.ticks").unwrap_or(0),
                    msg: worst.and_then(|h| h.attr_u64("msg")),
                    deliver_tick: worst.and_then(|h| h.attr_u64("deliver_tick")).unwrap_or(0),
                    attempts: worst.and_then(|h| h.attr_u64("attempts")).unwrap_or(0),
                    redeliveries: worst.and_then(|h| h.attr_u64("redeliveries")).unwrap_or(0),
                }
            })
            .collect()
    }

    /// Attribute an integer cost over the round: token → summed `key`
    /// over every phase's `token.N` span (e.g. `flash.page_reads`,
    /// `mcu.ram.peak_bytes`). Tokens that carried no such cost are absent.
    pub fn per_token(&self, key: &str) -> std::collections::BTreeMap<u64, u64> {
        let mut out = std::collections::BTreeMap::new();
        for p in self.phases() {
            for t in p.children.iter().filter(|c| c.name.starts_with("token.")) {
                let Some(id) = t.attr_u64("token") else {
                    continue;
                };
                let v = t.total(key);
                if v > 0 {
                    *out.entry(id).or_insert(0) += v;
                }
            }
        }
        out
    }

    /// Same attribution restricted to one phase.
    pub fn per_token_in_phase(
        &self,
        phase: &str,
        key: &str,
    ) -> std::collections::BTreeMap<u64, u64> {
        let mut out = std::collections::BTreeMap::new();
        for p in self.phases().into_iter().filter(|p| p.name == phase) {
            for t in p.children.iter().filter(|c| c.name.starts_with("token.")) {
                if let Some(id) = t.attr_u64("token") {
                    out.insert(id, t.total(key));
                }
            }
        }
        out
    }

    fn render_span(out: &mut String, s: &FinishedSpan, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&s.name);
        for (k, v) in &s.attrs {
            match v {
                AttrValue::U64(n) => out.push_str(&format!(" {k}={n}")),
                AttrValue::F64(f) => out.push_str(&format!(" {k}={f:.3}")),
                AttrValue::Str(t) => out.push_str(&format!(" {k}={t}")),
            }
        }
        out.push('\n');
        for c in &s.children {
            Self::render_span(out, c, depth + 1);
        }
    }

    /// Deterministic human-readable report: the stitched tree (no
    /// wall-clock anywhere), then the critical path in bus ticks.
    pub fn render(&self) -> String {
        let mut out = String::new();
        Self::render_span(&mut out, &self.root, 0);
        out.push_str("critical path:\n");
        for h in self.critical_path() {
            match h.msg {
                Some(m) => out.push_str(&format!(
                    "  {} ticks={} straggler=msg.{} deliver_tick={} attempts={} redeliveries={}\n",
                    h.phase, h.ticks, m, h.deliver_tick, h.attempts, h.redeliveries
                )),
                None => out.push_str(&format!(
                    "  {} ticks={} (no bus traffic)\n",
                    h.phase, h.ticks
                )),
            }
        }
        out.push_str(&format!("total bus ticks: {}\n", self.total_ticks()));
        out
    }

    /// The stitched trace as one JSON line (parseable by
    /// [`crate::json::parse`]).
    pub fn to_json(&self) -> String {
        self.root.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn spans_nest_and_roots_land_in_ring() {
        {
            let root = span("pds.select");
            root.set("db.table", "EMAIL");
            {
                let child = span("db.select");
                child.set("flash.page_reads", 17u64);
            }
            {
                let child = span("db.filter");
                child.set("flash.page_reads", 3u64);
            }
        }
        let root = take_last_root().expect("root finished");
        assert_eq!(root.name, "pds.select");
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.total("flash.page_reads"), 20, "summed from children");
        assert_eq!(root.attr("db.table").unwrap().as_str(), Some("EMAIL"));
    }

    #[test]
    fn parent_attr_wins_over_child_sum() {
        {
            let root = span("r");
            root.set("x", 100u64);
            {
                let c = span("c");
                c.set("x", 1u64);
            }
        }
        let root = take_last_root().unwrap();
        assert_eq!(root.total("x"), 100);
    }

    #[test]
    fn leaked_inner_guards_fold_into_parent() {
        {
            let _root = span("outer");
            let inner = span("inner");
            inner.set("k", 1u64);
            // inner dropped after root by declaration order — Drop folds it.
        }
        let root = take_last_root().unwrap();
        assert_eq!(root.name, "outer");
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].name, "inner");
    }

    #[test]
    fn trace_returns_result_and_tree() {
        let (val, spn) = trace("work", || {
            let _inner = span("step");
            41 + 1
        });
        assert_eq!(val, 42);
        assert_eq!(spn.name, "work");
        assert_eq!(spn.children[0].name, "step");
        assert!(take_last_root().is_none(), "trace consumed its root");
    }

    #[test]
    fn query_trace_budgets_and_render() {
        let (_, root) = trace("pds.select", || {
            let s = span("db.select");
            s.set("flash.page_reads", 17u64);
            s.set("mcu.ram.peak_bytes", 2048u64);
        });
        let qt = QueryTrace::new(root);
        assert_eq!(qt.page_reads(), 17);
        assert_eq!(qt.peak_ram_pages(512), 4);
        let checks = qt.check_budgets(&[("flash.page_reads", 17), ("flash.page_programs", 0)]);
        assert!(checks.iter().all(|c| c.within));
        let text = qt.render();
        assert!(text.contains("db.select"));
        assert!(text.contains("page_reads=17"));
        let j = json::parse(&qt.to_json()).expect("trace json parses");
        assert_eq!(
            j.get("span").and_then(json::Json::as_str),
            Some("pds.select")
        );
    }

    #[test]
    fn context_routes_roots_to_shared_sink() {
        let ctx = TraceContext {
            trace_id: 0xC0FFEE,
            parent_span: 7,
        };
        set_context(Some(ctx));
        for i in 0..3u64 {
            let g = span("token.work");
            g.set("token", i);
            {
                let inner = span("db.select");
                inner.set("flash.page_reads", 2u64);
            }
        }
        set_context(None);
        flush_contributions();
        // The thread-local ring saw nothing; the sink got all three.
        assert!(take_last_root().is_none());
        let mut got = drain_trace(0xC0FFEE);
        assert_eq!(got.len(), 3);
        got.sort_by_key(|(p, s)| (*p, s.attr_u64("token")));
        assert_eq!(got[0].0, 7, "parent span id travels with the span");
        assert_eq!(got[2].1.total("flash.page_reads"), 2);
        assert!(drain_trace(0xC0FFEE).is_empty(), "drain removes");
    }

    #[test]
    fn trace_under_context_returns_and_contributes() {
        let ctx = TraceContext {
            trace_id: 0xBEEF01,
            parent_span: 1,
        };
        set_context(Some(ctx));
        let (v, spn) = trace("work", || 5);
        set_context(None);
        flush_contributions();
        assert_eq!(v, 5);
        assert_eq!(spn.name, "work");
        assert_eq!(drain_trace(0xBEEF01).len(), 1);
    }

    #[test]
    fn contribution_buffer_flushes_at_capacity() {
        let ctx = TraceContext {
            trace_id: 0xFADE02,
            parent_span: 0,
        };
        set_context(Some(ctx));
        for i in 0..100u64 {
            let g = span("s");
            g.set("i", i);
        }
        set_context(None);
        flush_contributions();
        assert_eq!(drain_trace(0xFADE02).len(), 100, "nothing truncated");
    }

    #[test]
    fn strip_timing_zeroes_recursively() {
        let (_, mut root) = trace("a", || {
            let _b = span("b");
        });
        root.strip_timing();
        assert_eq!(root.duration_ns, 0);
        assert_eq!(root.children[0].duration_ns, 0);
    }

    fn hop(msg: u64, deliver: u64, attempts: u64, redeliveries: u64) -> FinishedSpan {
        FinishedSpan {
            name: format!("hop.{msg}"),
            duration_ns: 0,
            attrs: vec![
                ("msg".into(), AttrValue::U64(msg)),
                ("deliver_tick".into(), AttrValue::U64(deliver)),
                ("attempts".into(), AttrValue::U64(attempts)),
                ("redeliveries".into(), AttrValue::U64(redeliveries)),
            ],
            children: Vec::new(),
        }
    }

    #[test]
    fn fleet_trace_critical_path_and_attribution() {
        let mut tok = FinishedSpan {
            name: "token.1".into(),
            duration_ns: 0,
            attrs: vec![("token".into(), AttrValue::U64(1))],
            children: Vec::new(),
        };
        tok.children.push(FinishedSpan {
            name: "db.select".into(),
            duration_ns: 0,
            attrs: vec![("flash.page_reads".into(), AttrValue::U64(9))],
            children: Vec::new(),
        });
        let phase1 = FinishedSpan {
            name: "phase.collect".into(),
            duration_ns: 0,
            attrs: vec![("bus.ticks".into(), AttrValue::U64(12))],
            children: vec![tok, hop(4, 11, 3, 1), hop(2, 11, 1, 0)],
        };
        let phase2 = FinishedSpan {
            name: "phase.reduce.0".into(),
            duration_ns: 0,
            attrs: vec![("bus.ticks".into(), AttrValue::U64(5))],
            children: vec![hop(9, 17, 1, 0)],
        };
        let ft = FleetTrace::new(FinishedSpan {
            name: "fleet.agg".into(),
            duration_ns: 0,
            attrs: Vec::new(),
            children: vec![phase1, phase2],
        });
        assert_eq!(ft.total_ticks(), 17);
        let cp = ft.critical_path();
        assert_eq!(cp.len(), 2);
        assert_eq!(cp[0].msg, Some(2), "tie on tick 11 → lowest msg id");
        assert_eq!(cp[1].deliver_tick, 17);
        assert_eq!(ft.per_token("flash.page_reads").get(&1), Some(&9));
        let text = ft.render();
        assert!(text.contains("critical path"));
        assert!(text.contains("total bus ticks: 17"));
        let j = crate::json::parse(&ft.to_json()).expect("fleet trace json parses");
        assert_eq!(
            j.get("span").and_then(crate::json::Json::as_str),
            Some("fleet.agg")
        );
    }

    #[test]
    fn root_ring_is_bounded() {
        for i in 0..40u64 {
            let s = span("r");
            s.set("i", i);
        }
        let roots = recent_roots();
        assert_eq!(roots.len(), ROOT_RING_CAP);
        assert_eq!(roots.last().unwrap().attr_u64("i"), Some(39));
        // Drain so other tests see a clean ring.
        while take_last_root().is_some() {}
    }
}

//! Hierarchical span tracing.
//!
//! A [`SpanGuard`] marks a region of work; guards nest into a per-thread
//! stack, and when a root span finishes its whole tree is moved into a
//! small ring of recently finished traces. Instrumented layers attach
//! attributes (I/O deltas, RAM peaks, plan choices) to the current span;
//! [`QueryTrace`] then renders a finished tree as the per-query "explain"
//! report the tutorial's cost claims are checked against.
//!
//! The embedded stack is single-threaded (one secure MCU), so thread-local
//! state is exact, not approximate.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::time::Instant;

use crate::json::{write_f64, write_str};

/// A span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer (counts, bytes, pages).
    U64(u64),
    /// Float (ratios, scores).
    F64(f64),
    /// Short label (plan names, decisions).
    Str(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl AttrValue {
    /// Integer content, if any.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            AttrValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// String content, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct ActiveSpan {
    name: String,
    start: Instant,
    attrs: Vec<(String, AttrValue)>,
    children: Vec<FinishedSpan>,
}

/// A completed span with its completed children.
#[derive(Debug, Clone)]
pub struct FinishedSpan {
    /// Span name (`layer.operation`, e.g. `db.select`).
    pub name: String,
    /// Wall-clock duration.
    pub duration_ns: u64,
    /// Attributes set while the span was active.
    pub attrs: Vec<(String, AttrValue)>,
    /// Completed child spans, in completion order.
    pub children: Vec<FinishedSpan>,
}

impl FinishedSpan {
    /// The attribute `key` on this span, if set.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Integer attribute shorthand.
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        self.attr(key).and_then(AttrValue::as_u64)
    }

    /// The first descendant span (depth-first, self included) named `name`.
    pub fn find(&self, name: &str) -> Option<&FinishedSpan> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Total of integer attribute `key` over the tree: this span's value
    /// if it carries the attribute (a span's value is the delta over its
    /// whole subtree), otherwise the sum of its children's totals.
    pub fn total(&self, key: &str) -> u64 {
        if let Some(v) = self.attr_u64(key) {
            return v;
        }
        self.children.iter().map(|c| c.total(key)).sum()
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.name);
        out.push_str(&format!(" [{:.3} ms]", self.duration_ns as f64 / 1e6));
        for (k, v) in &self.attrs {
            match v {
                AttrValue::U64(n) => out.push_str(&format!(" {k}={n}")),
                AttrValue::F64(f) => out.push_str(&format!(" {k}={f:.3}")),
                AttrValue::Str(s) => out.push_str(&format!(" {k}={s}")),
            }
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }

    /// Serialize the tree as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"span\":");
        write_str(out, &self.name);
        out.push_str(&format!(",\"duration_ns\":{}", self.duration_ns));
        for (k, v) in &self.attrs {
            out.push(',');
            write_str(out, k);
            out.push(':');
            match v {
                AttrValue::U64(n) => out.push_str(&n.to_string()),
                AttrValue::F64(f) => write_f64(out, *f),
                AttrValue::Str(s) => write_str(out, s),
            }
        }
        if !self.children.is_empty() {
            out.push_str(",\"children\":[");
            for (i, c) in self.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                c.write_json(out);
            }
            out.push(']');
        }
        out.push('}');
    }
}

const ROOT_RING_CAP: usize = 16;

thread_local! {
    static STACK: RefCell<Vec<ActiveSpan>> = const { RefCell::new(Vec::new()) };
    static ROOTS: RefCell<VecDeque<FinishedSpan>> = const { RefCell::new(VecDeque::new()) };
}

/// RAII guard for one span. Dropping the guard finishes the span; if
/// inner guards are still alive (an early return skipped them) they are
/// folded into this span first, so the tree never corrupts.
pub struct SpanGuard {
    depth: usize,
}

/// Open a span as a child of the innermost active span.
pub fn span(name: &str) -> SpanGuard {
    STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.push(ActiveSpan {
            name: name.to_string(),
            start: Instant::now(),
            attrs: Vec::new(),
            children: Vec::new(),
        });
        SpanGuard { depth: s.len() - 1 }
    })
}

impl SpanGuard {
    /// Set (or overwrite) an attribute on this span.
    pub fn set(&self, key: &str, value: impl Into<AttrValue>) {
        let value = value.into();
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(sp) = s.get_mut(self.depth) {
                if let Some(slot) = sp.attrs.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    sp.attrs.push((key.to_string(), value));
                }
            }
        });
    }

    /// Add to an integer attribute (missing counts as 0).
    pub fn add(&self, key: &str, delta: u64) {
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(sp) = s.get_mut(self.depth) {
                if let Some((_, AttrValue::U64(v))) = sp.attrs.iter_mut().find(|(k, _)| k == key) {
                    *v += delta;
                } else {
                    sp.attrs.push((key.to_string(), AttrValue::U64(delta)));
                }
            }
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Fold any still-open inner spans (leaked by early return or
            // guard reordering), then this one.
            while s.len() > self.depth {
                let active = s.pop().expect("len checked");
                let finished = FinishedSpan {
                    name: active.name,
                    duration_ns: active.start.elapsed().as_nanos() as u64,
                    attrs: active.attrs,
                    children: active.children,
                };
                if let Some(parent) = s.last_mut() {
                    parent.children.push(finished);
                } else {
                    ROOTS.with(|r| {
                        let mut r = r.borrow_mut();
                        if r.len() == ROOT_RING_CAP {
                            r.pop_front();
                        }
                        r.push_back(finished);
                    });
                }
            }
        });
    }
}

/// Remove and return the most recently finished root span of this thread.
pub fn take_last_root() -> Option<FinishedSpan> {
    ROOTS.with(|r| r.borrow_mut().pop_back())
}

/// Most recently finished root spans of this thread, oldest first.
pub fn recent_roots() -> Vec<FinishedSpan> {
    ROOTS.with(|r| r.borrow().iter().cloned().collect())
}

/// Run `f` under a root-or-child span named `name` and return its result
/// together with the finished span tree. Only exact when `name` opens at
/// the top level of the thread's stack; otherwise the span is recorded in
/// its parent and a clone is returned.
pub fn trace<T>(name: &str, f: impl FnOnce() -> T) -> (T, FinishedSpan) {
    let was_root = STACK.with(|s| s.borrow().is_empty());
    let guard = span(name);
    let out = f();
    drop(guard);
    let finished = if was_root {
        take_last_root().expect("span just finished")
    } else {
        STACK.with(|s| {
            s.borrow()
                .last()
                .and_then(|p| p.children.last().cloned())
                .expect("span just attached to parent")
        })
    };
    (out, finished)
}

/// Outcome of checking one traced quantity against a claimed budget.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetCheck {
    /// Attribute name checked.
    pub name: String,
    /// Observed value.
    pub actual: u64,
    /// Claimed budget.
    pub budget: u64,
    /// `actual <= budget`.
    pub within: bool,
}

/// A finished per-query trace: the explain report of one gateway request.
///
/// Instrumented layers set the conventional attributes
/// `flash.page_reads`, `flash.page_programs`, `flash.block_erases`,
/// `mcu.ram.peak_bytes` and `policy.decision`; this wrapper names them.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    /// The root span of the request.
    pub root: FinishedSpan,
}

impl QueryTrace {
    /// Wrap a finished root span.
    pub fn new(root: FinishedSpan) -> Self {
        QueryTrace { root }
    }

    /// Pages read during the request.
    pub fn page_reads(&self) -> u64 {
        self.root.total("flash.page_reads")
    }

    /// Pages programmed during the request.
    pub fn page_programs(&self) -> u64 {
        self.root.total("flash.page_programs")
    }

    /// Blocks erased during the request.
    pub fn block_erases(&self) -> u64 {
        self.root.total("flash.block_erases")
    }

    /// Peak RAM bytes reserved during the request.
    pub fn peak_ram_bytes(&self) -> u64 {
        self.root.total("mcu.ram.peak_bytes")
    }

    /// Peak RAM in flash-page units (rounded up).
    pub fn peak_ram_pages(&self, page_size: u64) -> u64 {
        if page_size == 0 {
            return 0;
        }
        self.peak_ram_bytes().div_ceil(page_size)
    }

    /// The policy decision recorded by the gateway (`granted`/`denied`).
    pub fn policy_decision(&self) -> Option<&str> {
        self.root
            .find("pds.policy")
            .and_then(|s| s.attr("policy.decision"))
            .and_then(AttrValue::as_str)
    }

    /// Check traced totals against claimed budgets
    /// (`[("flash.page_reads", 17), …]`).
    pub fn check_budgets(&self, budgets: &[(&str, u64)]) -> Vec<BudgetCheck> {
        budgets
            .iter()
            .map(|(name, budget)| {
                let actual = self.root.total(name);
                BudgetCheck {
                    name: name.to_string(),
                    actual,
                    budget: *budget,
                    within: actual <= *budget,
                }
            })
            .collect()
    }

    /// Human-readable explain report: the span tree, then the headline
    /// cost totals in the tutorial's units.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.root.render_into(&mut out, 0);
        out.push_str(&format!(
            "totals: page_reads={} page_programs={} block_erases={} peak_ram_bytes={}\n",
            self.page_reads(),
            self.page_programs(),
            self.block_erases(),
            self.peak_ram_bytes(),
        ));
        out
    }

    /// The trace as one JSON line.
    pub fn to_json(&self) -> String {
        self.root.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn spans_nest_and_roots_land_in_ring() {
        {
            let root = span("pds.select");
            root.set("db.table", "EMAIL");
            {
                let child = span("db.select");
                child.set("flash.page_reads", 17u64);
            }
            {
                let child = span("db.filter");
                child.set("flash.page_reads", 3u64);
            }
        }
        let root = take_last_root().expect("root finished");
        assert_eq!(root.name, "pds.select");
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.total("flash.page_reads"), 20, "summed from children");
        assert_eq!(root.attr("db.table").unwrap().as_str(), Some("EMAIL"));
    }

    #[test]
    fn parent_attr_wins_over_child_sum() {
        {
            let root = span("r");
            root.set("x", 100u64);
            {
                let c = span("c");
                c.set("x", 1u64);
            }
        }
        let root = take_last_root().unwrap();
        assert_eq!(root.total("x"), 100);
    }

    #[test]
    fn leaked_inner_guards_fold_into_parent() {
        {
            let _root = span("outer");
            let inner = span("inner");
            inner.set("k", 1u64);
            // inner dropped after root by declaration order — Drop folds it.
        }
        let root = take_last_root().unwrap();
        assert_eq!(root.name, "outer");
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].name, "inner");
    }

    #[test]
    fn trace_returns_result_and_tree() {
        let (val, spn) = trace("work", || {
            let _inner = span("step");
            41 + 1
        });
        assert_eq!(val, 42);
        assert_eq!(spn.name, "work");
        assert_eq!(spn.children[0].name, "step");
        assert!(take_last_root().is_none(), "trace consumed its root");
    }

    #[test]
    fn query_trace_budgets_and_render() {
        let (_, root) = trace("pds.select", || {
            let s = span("db.select");
            s.set("flash.page_reads", 17u64);
            s.set("mcu.ram.peak_bytes", 2048u64);
        });
        let qt = QueryTrace::new(root);
        assert_eq!(qt.page_reads(), 17);
        assert_eq!(qt.peak_ram_pages(512), 4);
        let checks = qt.check_budgets(&[("flash.page_reads", 17), ("flash.page_programs", 0)]);
        assert!(checks.iter().all(|c| c.within));
        let text = qt.render();
        assert!(text.contains("db.select"));
        assert!(text.contains("page_reads=17"));
        let j = json::parse(&qt.to_json()).expect("trace json parses");
        assert_eq!(
            j.get("span").and_then(json::Json::as_str),
            Some("pds.select")
        );
    }

    #[test]
    fn root_ring_is_bounded() {
        for i in 0..40u64 {
            let s = span("r");
            s.set("i", i);
        }
        let roots = recent_roots();
        assert_eq!(roots.len(), ROOT_RING_CAP);
        assert_eq!(roots.last().unwrap().attr_u64("i"), Some(39));
        // Drain so other tests see a clean ring.
        while take_last_root().is_some() {}
    }
}

//! Hand-rolled JSON: a writer for the JSONL exporter and a small
//! recursive-descent parser so exports can be round-tripped in tests and
//! by the bench `report` binary — all without external crates.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64; integers up to 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, key-ordered for deterministic re-serialization.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String content, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean content, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric content as u64, if a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Numeric content, if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Array content, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Append a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append an f64 in a JSON-legal form (`NaN`/`inf` become `null`).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Incremental writer for one JSON object on one line.
pub struct ObjWriter {
    buf: String,
    first: bool,
}

impl ObjWriter {
    /// Start an object: `{`.
    pub fn new() -> Self {
        ObjWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        write_str(&mut self.buf, k);
        self.buf.push(':');
    }

    /// Add `"k":"v"`.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        write_str(&mut self.buf, v);
        self
    }

    /// Add `"k":v` for an integer.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Add `"k":true` / `"k":false`.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add `"k":v` for a float.
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        write_f64(&mut self.buf, v);
        self
    }

    /// Add `"k":<already-serialized JSON>`.
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Close the object and return the line.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for ObjWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Parse one JSON document. Returns `None` on any syntax error or
/// trailing garbage.
pub fn parse(input: &str) -> Option<Json> {
    let mut p = Parser {
        b: input.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i == p.b.len() {
        Some(v)
    } else {
        None
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Option<()> {
        if self.peek() == Some(c) {
            self.i += 1;
            Some(())
        } else {
            None
        }
    }

    fn lit(&mut self, s: &str) -> Option<()> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<Json> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Some(Json::Str(self.string()?)),
            b't' => self.lit("true").map(|_| Json::Bool(true)),
            b'f' => self.lit("false").map(|_| Json::Bool(false)),
            b'n' => self.lit("null").map(|_| Json::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Option<Json> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Some(Json::Obj(m));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let v = self.value()?;
            m.insert(k, v);
            self.ws();
            match self.peek()? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Some(Json::Obj(m));
                }
                _ => return None,
            }
        }
    }

    fn array(&mut self) -> Option<Json> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Some(Json::Arr(v));
        }
        loop {
            self.ws();
            v.push(self.value()?);
            self.ws();
            match self.peek()? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Some(Json::Arr(v));
                }
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.i += 1;
                    return Some(s);
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek()? {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self.b.get(self.i + 1..self.i + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            s.push(char::from_u32(code)?);
                            self.i += 4;
                        }
                        _ => return None,
                    }
                    self.i += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.b[self.i..]).ok()?;
                    let c = rest.chars().next()?;
                    s.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.i;
        while self
            .peek()
            .is_some_and(|c| matches!(c, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()?
            .parse::<f64>()
            .ok()
            .map(Json::Num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes() {
        let line = ObjWriter::new()
            .str("name", "a\"b\\c\nd")
            .u64("v", 42)
            .f64("f", 1.5)
            .finish();
        assert_eq!(line, r#"{"name":"a\"b\\c\nd","v":42,"f":1.5}"#);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let line = ObjWriter::new()
            .str("type", "counter")
            .str("name", "flash.page_reads")
            .u64("value", 640)
            .finish();
        let j = parse(&line).expect("parse");
        assert_eq!(j.get("type").and_then(Json::as_str), Some("counter"));
        assert_eq!(j.get("value").and_then(Json::as_u64), Some(640));
    }

    #[test]
    fn parse_nested() {
        let j = parse(r#"{"a":[1,2,{"b":null}],"c":true,"d":-1.25e2}"#).unwrap();
        assert_eq!(j.get("d").and_then(Json::as_f64), Some(-125.0));
        assert_eq!(j.get("a").and_then(Json::as_arr).map(|a| a.len()), Some(3));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_none());
        assert!(parse("{}x").is_none());
        assert!(parse(r#"{"a":}"#).is_none());
    }

    #[test]
    fn unicode_escapes() {
        let j = parse(r#"{"s":"é\t"}"#).unwrap();
        assert_eq!(j.get("s").and_then(Json::as_str), Some("é\t"));
    }
}

//! Structured flight-recorder events — the feed of the durable black box.
//!
//! The [`metrics`](crate::metrics) event ring is a RAM-only debugging
//! aid: names and ad-hoc fields, lost with the process (or, on a secure
//! token, with the power). The flight API is its durable counterpart:
//! every event is a fixed-size, *encodable* [`EventFrame`] —
//! `{tick, severity, subsystem, code, args}`, codes and ids only, never
//! payload bytes — cheap enough to record on data paths and small
//! enough to persist through the NAND layer (`pds-flash`'s `BlackBox`
//! ring). This module owns the vocabulary (severities, subsystem ids,
//! event codes, the 28-byte wire form) and the *staging buffer*; the
//! durable tier lives above, in the flash crate.
//!
//! Staging is thread-local by design: a secure token is single-threaded,
//! and in fleet runs each token operation runs to completion on one
//! worker thread. A layer anywhere in the stack records with
//! [`record`] (or the [`event!`](crate::event!) macro); the owning
//! token drains the buffer at the end of its operation with [`drain`]
//! and absorbs the frames into its own black box — frames never leak
//! across tokens, and the stamped sequence is a pure function of the
//! token's operation order, bit-identical at any worker count.
//!
//! A configurable severity floor ([`set_severity_floor`]) keeps hot
//! paths cheap: a `Debug`-level record below the floor is one atomic
//! load and an early return — no allocation, no lock.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};

/// Severity of one flight-recorder event, ordered `Debug < Info < Warn
/// < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Per-IO chatter, recorded only when the floor is lowered.
    Debug = 0,
    /// Normal operation milestones (ingest, commit, sync).
    Info = 1,
    /// Survivable anomalies (block retired, torn tail truncated).
    Warn = 2,
    /// Failures the token could not hide.
    Error = 3,
}

impl Severity {
    /// Parse the wire byte; `None` for anything out of range (a torn
    /// frame must never decode).
    pub fn from_u8(v: u8) -> Option<Severity> {
        match v {
            0 => Some(Severity::Debug),
            1 => Some(Severity::Info),
            2 => Some(Severity::Warn),
            3 => Some(Severity::Error),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Debug => "DEBUG",
            Severity::Info => "INFO",
            Severity::Warn => "WARN",
            Severity::Error => "ERROR",
        }
    }
}

/// Subsystem ids carried by [`EventFrame::subsystem`].
pub mod subsystem {
    /// NAND flash simulator (block retirement, fault arming).
    pub const FLASH: u8 = 1;
    /// Inverted-index search engine.
    pub const SEARCH: u8 = 2;
    /// Embedded database / MVCC.
    pub const DB: u8 = 3;
    /// The PDS gateway (ingest, commit, sync, contributions).
    pub const CORE: u8 = 4;
    /// Crash recovery (reopen, torn tails).
    pub const RECOVERY: u8 = 5;
    /// Fleet runtime (scheduler, bus) — driver-side events.
    pub const FLEET: u8 = 6;

    /// Display name of a subsystem id.
    pub fn name(id: u8) -> &'static str {
        match id {
            FLASH => "flash",
            SEARCH => "search",
            DB => "db",
            CORE => "core",
            RECOVERY => "recovery",
            FLEET => "fleet",
            _ => "unknown",
        }
    }
}

/// Event codes carried by [`EventFrame::code`]. The high byte matches
/// the subsystem id, so a code is self-describing even without its
/// frame.
pub mod code {
    /// A stuck erase block was retired from rotation; `args[0]` = block.
    pub const FLASH_BLOCK_RETIRED: u16 = 0x0101;
    /// A fault plan was armed on this chip; `args[0]` = plan seed.
    pub const FLASH_FAULTS_ARMED: u16 = 0x0102;
    /// Recovery truncated a torn page tail; `args` = (pages kept, torn).
    pub const RECOVERY_TORN_TAIL: u16 = 0x0501;
    /// A reopen completed; `args` = (docs recovered, changes dropped).
    pub const RECOVERY_REOPEN: u16 = 0x0502;
    /// One record ingested; `args` = (table id, logical day).
    pub const CORE_INGEST: u16 = 0x0401;
    /// A write batch committed; `args[0]` = HLC counter.
    pub const CORE_COMMIT: u16 = 0x0402;
    /// Every buffered structure durably flushed.
    pub const CORE_SYNC: u16 = 0x0403;
    /// A protocol contribution was computed; `args[0]` = group count.
    pub const CORE_CONTRIBUTION: u16 = 0x0404;
    /// The token powered down to its persistent state.
    pub const CORE_HIBERNATE: u16 = 0x0405;

    /// Display name of an event code.
    pub fn name(c: u16) -> &'static str {
        match c {
            FLASH_BLOCK_RETIRED => "block_retired",
            FLASH_FAULTS_ARMED => "faults_armed",
            RECOVERY_TORN_TAIL => "torn_tail",
            RECOVERY_REOPEN => "reopen",
            CORE_INGEST => "ingest",
            CORE_COMMIT => "commit",
            CORE_SYNC => "sync",
            CORE_CONTRIBUTION => "contribution",
            CORE_HIBERNATE => "hibernate",
            _ => "unknown",
        }
    }
}

/// Fixed wire size of one encoded frame.
pub const FRAME_BYTES: usize = 28;

/// One structured flight-recorder event. Args are opaque u64s — codes
/// and ids only; the vocabulary has no field that could carry document
/// or key bytes across the recorder sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventFrame {
    /// Per-token monotone sequence, stamped by the durable ring when the
    /// frame is absorbed (0 while staged).
    pub tick: u64,
    /// Severity.
    pub severity: Severity,
    /// Subsystem id (see [`subsystem`]).
    pub subsystem: u8,
    /// Event code (see [`code`]).
    pub code: u16,
    /// Two opaque arguments (counts, block ids, HLC counters …).
    pub args: [u64; 2],
}

impl EventFrame {
    /// A staged (unstamped) frame.
    pub fn new(severity: Severity, subsystem: u8, code: u16, args: [u64; 2]) -> Self {
        EventFrame {
            tick: 0,
            severity,
            subsystem,
            code,
            args,
        }
    }

    /// Fixed 28-byte wire form.
    pub fn encode(&self) -> [u8; FRAME_BYTES] {
        let mut out = [0u8; FRAME_BYTES];
        out[0..8].copy_from_slice(&self.tick.to_le_bytes());
        out[8] = self.severity as u8;
        out[9] = self.subsystem;
        out[10..12].copy_from_slice(&self.code.to_le_bytes());
        out[12..20].copy_from_slice(&self.args[0].to_le_bytes());
        out[20..28].copy_from_slice(&self.args[1].to_le_bytes());
        out
    }

    /// Parse the wire form; `None` on any size mismatch or an
    /// out-of-range severity byte — a torn frame is dropped, never
    /// half-decoded.
    pub fn decode(bytes: &[u8]) -> Option<EventFrame> {
        if bytes.len() != FRAME_BYTES {
            return None;
        }
        Some(EventFrame {
            tick: u64::from_le_bytes(bytes.get(0..8)?.try_into().ok()?),
            severity: Severity::from_u8(*bytes.get(8)?)?,
            subsystem: *bytes.get(9)?,
            code: u16::from_le_bytes(bytes.get(10..12)?.try_into().ok()?),
            args: [
                u64::from_le_bytes(bytes.get(12..20)?.try_into().ok()?),
                u64::from_le_bytes(bytes.get(20..28)?.try_into().ok()?),
            ],
        })
    }

    /// One-line human rendering: `t=12 WARN flash.block_retired [3, 0]`.
    pub fn render(&self) -> String {
        format!(
            "t={} {} {}.{} [{}, {}]",
            self.tick,
            self.severity.name(),
            subsystem::name(self.subsystem),
            code::name(self.code),
            self.args[0],
            self.args[1]
        )
    }
}

/// Frames below this severity are dropped at the record site.
static FLOOR: AtomicU8 = AtomicU8::new(Severity::Info as u8);

/// Staged frames awaiting their owning token's drain. Bounded so a
/// recording layer whose owner never drains cannot grow without limit.
const STAGE_CAP: usize = 4096;

thread_local! {
    static STAGED: RefCell<Vec<EventFrame>> = const { RefCell::new(Vec::new()) };
}

/// Set the severity floor (process-wide). Frames strictly below it are
/// dropped at the record site — one atomic load, no allocation.
pub fn set_severity_floor(s: Severity) {
    FLOOR.store(s as u8, Ordering::Relaxed);
}

/// The current severity floor.
pub fn severity_floor() -> Severity {
    Severity::from_u8(FLOOR.load(Ordering::Relaxed)).unwrap_or(Severity::Info)
}

/// Record one structured event into this thread's staging buffer. The
/// frame is unstamped (`tick == 0`); the durable ring stamps it on
/// absorb. Below-floor records return immediately.
pub fn record(severity: Severity, subsystem: u8, code: u16, args: [u64; 2]) {
    if (severity as u8) < FLOOR.load(Ordering::Relaxed) {
        return;
    }
    STAGED.with(|s| {
        let mut s = s.borrow_mut();
        if s.len() >= STAGE_CAP {
            s.remove(0);
            crate::metrics::counter("obs.flight_staged_dropped").inc();
        }
        s.push(EventFrame::new(severity, subsystem, code, args));
    });
}

/// Take every staged frame off this thread, in record order. The owning
/// token calls this at the end of each of its operations and absorbs
/// the frames into its durable ring; a recovery path calls it first to
/// *discard* frames that were staged by an operation the crash killed —
/// they never reached flash and must not reappear as phantoms.
pub fn drain() -> Vec<EventFrame> {
    STAGED.with(|s| std::mem::take(&mut *s.borrow_mut()))
}

/// Staged frames currently waiting on this thread.
pub fn staged() -> usize {
    STAGED.with(|s| s.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_wire_form_round_trips_and_rejects_torn_bytes() {
        let f = EventFrame {
            tick: u64::MAX - 1,
            severity: Severity::Warn,
            subsystem: subsystem::FLASH,
            code: code::FLASH_BLOCK_RETIRED,
            args: [7, u64::MAX],
        };
        assert_eq!(EventFrame::decode(&f.encode()), Some(f));
        assert_eq!(EventFrame::decode(&f.encode()[..FRAME_BYTES - 1]), None);
        assert_eq!(EventFrame::decode(&[0u8; FRAME_BYTES + 1]), None);
        // Severity byte out of range: the frame is torn, not guessed at.
        let mut bad = f.encode();
        bad[8] = 9;
        assert_eq!(EventFrame::decode(&bad), None);
    }

    #[test]
    fn severity_floor_gates_the_record_site() {
        drain(); // isolate from other tests on this thread
        set_severity_floor(Severity::Warn);
        record(Severity::Info, subsystem::CORE, code::CORE_INGEST, [0, 0]);
        record(Severity::Debug, subsystem::FLASH, 0, [0, 0]);
        assert_eq!(staged(), 0, "below-floor frames never stage");
        record(
            Severity::Error,
            subsystem::RECOVERY,
            code::RECOVERY_TORN_TAIL,
            [1, 2],
        );
        let frames = drain();
        set_severity_floor(Severity::Info);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].severity, Severity::Error);
        assert_eq!(frames[0].args, [1, 2]);
        assert_eq!(staged(), 0, "drain empties the stage");
    }

    #[test]
    fn frames_drain_in_record_order() {
        drain();
        for k in 0..5u64 {
            record(Severity::Info, subsystem::CORE, code::CORE_INGEST, [k, 0]);
        }
        let frames = drain();
        assert_eq!(
            frames.iter().map(|f| f.args[0]).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert!(
            frames.iter().all(|f| f.tick == 0),
            "staged frames unstamped"
        );
    }

    #[test]
    fn rendering_names_the_vocabulary() {
        let f = EventFrame {
            tick: 3,
            severity: Severity::Warn,
            subsystem: subsystem::FLASH,
            code: code::FLASH_BLOCK_RETIRED,
            args: [9, 0],
        };
        assert_eq!(f.render(), "t=3 WARN flash.block_retired [9, 0]");
        assert_eq!(subsystem::name(99), "unknown");
        assert_eq!(code::name(0xFFFF), "unknown");
    }
}

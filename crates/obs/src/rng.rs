//! In-tree deterministic pseudo-random numbers.
//!
//! The whole workspace must build with no network access, so nothing may
//! depend on the external `rand` crate. This module supplies the small
//! slice of its API the code base actually uses — `StdRng::seed_from_u64`,
//! `gen_range`, `gen_bool`, `fill_bytes`, `gen::<T>()` — backed by
//! xoshiro256++ (Blackman & Vigna) seeded through SplitMix64, the
//! textbook pairing. Every generator is deterministic from its seed:
//! experiments regenerate bit-identically.

use std::ops::{Range, RangeInclusive};

/// SplitMix64: the seed expander. One u64 of state, passes BigCrush on
/// its own; its stream is used to initialise the xoshiro state so that
/// similar seeds (0, 1, 2 …) still yield uncorrelated streams.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator at `state`.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// Next value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The workspace's standard generator: xoshiro256++.
///
/// 256 bits of state, period 2^256 − 1, a rotate-add-xor-shift update —
/// a few ns per call with no multiplier on the output path.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

/// Low-level generator interface (mirror of `rand::RngCore`).
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform bits (upper half of the 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seeding interface (mirror of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        StdRng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

/// Types producible uniformly from raw generator output (mirror of
/// sampling with `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draw one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with the canonical 53-bit construction.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a uniform value can be drawn from (mirror of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw a uniform value from the range. Panics on an empty range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Widening-multiply bounded draw: maps a 64-bit draw onto `[0, span)`
/// with negligible bias (Lemire's method without the rejection step —
/// bias ≤ span/2^64, irrelevant at simulation scale).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u64;
                if span == u64::MAX as $t as u64 && start == 0 {
                    return rng.next_u64() as $t;
                }
                start + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u64;
                (start as i128 + bounded_u64(rng, span.wrapping_add(1).max(1)) as i128) as $t
            }
        }
    )*};
}

impl_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods (mirror of `rand::Rng`), blanket-implemented
/// for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::sample(self) < p
    }

    /// Fill a byte slice with uniform bytes (mirror of `rand::Rng::fill`).
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }

    /// Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = bounded_u64(self, i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniform element of a non-empty slice.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T>
    where
        Self: Sized,
    {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[bounded_u64(self, slice.len() as u64) as usize])
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `rand`-compatible module layout so `use …::rngs::StdRng` keeps working.
pub mod rngs {
    pub use super::{SplitMix64, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c stream.
        let mut sm = SplitMix64::new(0);
        let first = sm.next_u64();
        assert_eq!(first, 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&w));
            let x = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_range(3u8..=5);
            assert!((3..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_roughly_matches_p() {
        let mut rng = StdRng::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn uniformity_coarse_check() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[rng.gen_range(0usize..8)] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket {b} out of tolerance");
        }
    }
}

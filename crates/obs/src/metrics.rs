//! Thread-safe metrics: counters, gauges, log2-bucket histograms, and a
//! ring buffer of recent events — all registered by name in a global
//! registry and exportable as JSON lines.
//!
//! Hot paths hold an `Arc` to their instrument, so recording is one
//! relaxed atomic op; the registry lock is touched only at registration
//! and export time.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::ObjWriter;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value (also usable as a high-water mark via
/// [`Gauge::record_max`]).
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicU64,
}

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, n: u64) {
        self.v.store(n, Ordering::Relaxed);
    }

    /// Increase by `n` (e.g. bytes currently reserved).
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrease by `n`, saturating at zero.
    pub fn sub(&self, n: u64) {
        let mut cur = self.v.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .v
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Raise to `n` if `n` is larger (high-water mark).
    pub fn record_max(&self, n: u64) {
        self.v.fetch_max(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: values ≥ 2^62 land in the last bucket.
const HIST_BUCKETS: usize = 64;

/// A histogram with power-of-two buckets: bucket `i` counts values `v`
/// with `2^(i-1) ≤ v < 2^i` (bucket 0 counts `v == 0`).
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        let b = if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
        };
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Non-empty buckets as `(upper_bound_exclusive, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                if c == 0 {
                    return None;
                }
                let hi = if i == 0 { 1 } else { 1u64 << i.min(63) };
                Some((hi, c))
            })
            .collect()
    }
}

/// One structured event in the ring buffer.
#[derive(Debug, Clone)]
pub struct Event {
    /// Global sequence number (monotonic across the process).
    pub seq: u64,
    /// Event name (dot-scoped like metric names).
    pub name: String,
    /// Named integer fields.
    pub fields: Vec<(String, u64)>,
}

/// The global metrics registry.
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    events: Mutex<VecDeque<Event>>,
    event_seq: AtomicU64,
    event_cap: usize,
}

impl Registry {
    fn new() -> Self {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            events: Mutex::new(VecDeque::new()),
            event_seq: AtomicU64::new(0),
            event_cap: 1024,
        }
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.counters.lock().unwrap();
        m.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.gauges.lock().unwrap();
        m.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.histograms.lock().unwrap();
        m.entry(name.to_string()).or_default().clone()
    }

    /// Append an event to the ring buffer (oldest dropped at capacity).
    pub fn event(&self, name: &str, fields: &[(&str, u64)]) {
        let seq = self.event_seq.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.events.lock().unwrap();
        if ring.len() == self.event_cap {
            ring.pop_front();
        }
        ring.push_back(Event {
            seq,
            name: name.to_string(),
            fields: fields.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        });
    }

    /// Snapshot of the event ring, oldest first.
    pub fn recent_events(&self) -> Vec<Event> {
        self.events.lock().unwrap().iter().cloned().collect()
    }

    /// Reset every registered instrument to zero and clear the event ring.
    /// Existing `Arc` handles stay valid. Intended for tests and for
    /// scoping a measurement window.
    pub fn reset(&self) {
        for c in self.counters.lock().unwrap().values() {
            c.v.store(0, Ordering::Relaxed);
        }
        for g in self.gauges.lock().unwrap().values() {
            g.v.store(0, Ordering::Relaxed);
        }
        for h in self.histograms.lock().unwrap().values() {
            h.count.store(0, Ordering::Relaxed);
            h.sum.store(0, Ordering::Relaxed);
            h.max.store(0, Ordering::Relaxed);
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
        self.events.lock().unwrap().clear();
    }

    /// Export every instrument and recent event as JSON lines — the one
    /// data path shared by live observability and experiment regeneration.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, c) in self.counters.lock().unwrap().iter() {
            out.push_str(
                &ObjWriter::new()
                    .str("type", "counter")
                    .str("name", name)
                    .u64("value", c.get())
                    .finish(),
            );
            out.push('\n');
        }
        for (name, g) in self.gauges.lock().unwrap().iter() {
            out.push_str(
                &ObjWriter::new()
                    .str("type", "gauge")
                    .str("name", name)
                    .u64("value", g.get())
                    .finish(),
            );
            out.push('\n');
        }
        for (name, h) in self.histograms.lock().unwrap().iter() {
            let mut buckets = String::from("[");
            for (i, (hi, c)) in h.nonzero_buckets().iter().enumerate() {
                if i > 0 {
                    buckets.push(',');
                }
                buckets.push_str(&format!("[{hi},{c}]"));
            }
            buckets.push(']');
            out.push_str(
                &ObjWriter::new()
                    .str("type", "histogram")
                    .str("name", name)
                    .u64("count", h.count())
                    .u64("sum", h.sum())
                    .u64("max", h.max())
                    .raw("buckets", &buckets)
                    .finish(),
            );
            out.push('\n');
        }
        for ev in self.recent_events() {
            let mut w = ObjWriter::new()
                .str("type", "event")
                .u64("seq", ev.seq)
                .str("name", &ev.name);
            for (k, v) in &ev.fields {
                w = w.u64(k, *v);
            }
            out.push_str(&w.finish());
            out.push('\n');
        }
        out
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Shorthand for `global().counter(name)`.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Shorthand for `global().gauge(name)`.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Shorthand for `global().histogram(name)`.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// Shorthand for `global().event(name, fields)`.
pub fn event(name: &str, fields: &[(&str, u64)]) {
    global().event(name, fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn counters_and_gauges_register_once() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("x").get(), 3);
        let g = r.gauge("g");
        g.set(10);
        g.add(5);
        g.sub(20);
        assert_eq!(g.get(), 0, "sub saturates");
        g.record_max(7);
        g.record_max(3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_log2_buckets() {
        let h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1010);
        assert_eq!(h.max(), 1000);
        let buckets = h.nonzero_buckets();
        // 0 → bucket (1,1); 1 → (2,1); 2,3 → (4,2); 4 → (8,1); 1000 → (1024,1)
        assert_eq!(buckets, vec![(1, 1), (2, 1), (4, 2), (8, 1), (1024, 1)]);
    }

    #[test]
    fn event_ring_caps_and_orders() {
        let r = Registry::new();
        for i in 0..2000u64 {
            r.event("e", &[("i", i)]);
        }
        let evs = r.recent_events();
        assert_eq!(evs.len(), 1024);
        assert_eq!(evs.first().unwrap().fields[0].1, 2000 - 1024);
        assert_eq!(evs.last().unwrap().fields[0].1, 1999);
    }

    #[test]
    fn export_round_trips_through_parser() {
        let r = Registry::new();
        r.counter("flash.page_reads").add(640);
        r.gauge("mcu.ram.high_water_bytes").set(4096);
        r.histogram("pds.request_ns").observe(123456);
        r.event("pds.request", &[("granted", 1)]);
        let jsonl = r.export_jsonl();
        let mut kinds = Vec::new();
        for line in jsonl.lines() {
            let j = json::parse(line).expect("every exported line parses");
            kinds.push(
                j.get("type")
                    .and_then(json::Json::as_str)
                    .unwrap()
                    .to_string(),
            );
        }
        assert_eq!(kinds, ["counter", "gauge", "histogram", "event"]);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let r = Registry::new();
        let c = r.counter("c");
        c.add(5);
        r.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(r.counter("c").get(), 1);
    }
}

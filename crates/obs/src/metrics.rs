//! Thread-safe metrics: counters, gauges, log2-bucket histograms, and a
//! ring buffer of recent events — all registered by name in a global
//! registry and exportable as JSON lines.
//!
//! Hot paths hold an `Arc` to their instrument, so recording is one
//! relaxed atomic op; the registry lock is touched only at registration
//! and export time.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::ObjWriter;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value (also usable as a high-water mark via
/// [`Gauge::record_max`]).
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicU64,
}

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, n: u64) {
        self.v.store(n, Ordering::Relaxed);
    }

    /// Increase by `n` (e.g. bytes currently reserved).
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrease by `n`, saturating at zero.
    pub fn sub(&self, n: u64) {
        let mut cur = self.v.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .v
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Raise to `n` if `n` is larger (high-water mark).
    pub fn record_max(&self, n: u64) {
        self.v.fetch_max(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: values ≥ 2^62 land in the last bucket.
const HIST_BUCKETS: usize = 64;

/// A histogram with power-of-two buckets: bucket `i` counts values `v`
/// with `2^(i-1) ≤ v < 2^i` (bucket 0 counts `v == 0`).
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        let b = if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
        };
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Quantile estimate interpolated from the log2 buckets: the value at
    /// rank `ceil(q·count)`, placed linearly inside its bucket's
    /// `[2^(i-1), 2^i)` range. Exact for bucket boundaries, within one
    /// bucket's width otherwise — good enough for the order-of-magnitude
    /// latencies the repo reports. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let (lo, hi) = if i == 0 {
                    (0u64, 1u64)
                } else {
                    (1u64 << (i - 1), 1u64 << i.min(63))
                };
                let frac = (rank - seen) as f64 / c as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                // Never report beyond the observed maximum.
                return est.min(self.max() as f64);
            }
            seen += c;
        }
        self.max() as f64
    }

    /// `(p50, p95, p99)` interpolated estimates.
    pub fn quantiles(&self) -> (f64, f64, f64) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }

    /// Non-empty buckets as `(bucket index, count)` pairs — the lossless
    /// form a [`MetricsDelta`](crate::delta::MetricsDelta) snapshots, so
    /// merged histograms land in exactly the same buckets.
    pub fn bucket_counts(&self) -> Vec<(u8, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c != 0).then_some((i as u8, c))
            })
            .collect()
    }

    /// Non-empty buckets as `(upper_bound_exclusive, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                if c == 0 {
                    return None;
                }
                let hi = if i == 0 { 1 } else { 1u64 << i.min(63) };
                Some((hi, c))
            })
            .collect()
    }
}

/// One structured event in the ring buffer.
#[derive(Debug, Clone)]
pub struct Event {
    /// Global sequence number (monotonic across the process).
    pub seq: u64,
    /// Event name (dot-scoped like metric names).
    pub name: String,
    /// Named integer fields.
    pub fields: Vec<(String, u64)>,
}

/// The global metrics registry.
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    events: Mutex<VecDeque<Event>>,
    event_seq: AtomicU64,
    event_cap: AtomicUsize,
    events_dropped: AtomicU64,
}

/// Default event-ring capacity (overridable per registry with
/// [`Registry::set_event_capacity`]).
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty, private registry. The process-wide one is [`global`];
    /// additional instances act as *shards* — per-worker or per-token
    /// telemetry scopes whose contents are snapshotted as a
    /// [`MetricsDelta`](crate::delta::MetricsDelta) and merged
    /// downstream instead of contending on one lock.
    pub fn new() -> Self {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            events: Mutex::new(VecDeque::new()),
            event_seq: AtomicU64::new(0),
            event_cap: AtomicUsize::new(DEFAULT_EVENT_CAPACITY),
            events_dropped: AtomicU64::new(0),
        }
    }

    /// Resize the event ring. Shrinking drops (and counts) the oldest
    /// entries; a capacity of 0 keeps nothing and counts every event as
    /// dropped.
    pub fn set_event_capacity(&self, cap: usize) {
        self.event_cap.store(cap, Ordering::Relaxed);
        let mut ring = self
            .events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while ring.len() > cap {
            ring.pop_front();
            self.events_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current event-ring capacity.
    pub fn event_capacity(&self) -> usize {
        self.event_cap.load(Ordering::Relaxed)
    }

    /// Events silently evicted from the ring so far — nonzero means
    /// [`Registry::recent_events`] and the JSONL export are *incomplete*
    /// views of the event stream (also exported as the
    /// `obs.events_dropped` counter line).
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped.load(Ordering::Relaxed)
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self
            .counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        m.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self
            .gauges
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        m.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self
            .histograms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        m.entry(name.to_string()).or_default().clone()
    }

    /// Every counter as `(name, value)`, name-ordered.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect()
    }

    /// Every gauge as `(name, value)`, name-ordered.
    pub fn gauge_values(&self) -> Vec<(String, u64)> {
        self.gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, g)| (k.clone(), g.get()))
            .collect()
    }

    /// Every histogram handle as `(name, Arc)`, name-ordered.
    pub fn histogram_handles(&self) -> Vec<(String, Arc<Histogram>)> {
        self.histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, h)| (k.clone(), h.clone()))
            .collect()
    }

    /// Append an event to the ring buffer. At capacity the oldest entry
    /// is evicted and the eviction is *counted* (`obs.events_dropped`),
    /// so a truncated export can never masquerade as complete.
    pub fn event(&self, name: &str, fields: &[(&str, u64)]) {
        let seq = self.event_seq.fetch_add(1, Ordering::Relaxed);
        let cap = self.event_cap.load(Ordering::Relaxed);
        let mut ring = self
            .events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while ring.len() >= cap.max(1) {
            ring.pop_front();
            self.events_dropped.fetch_add(1, Ordering::Relaxed);
        }
        if cap == 0 {
            self.events_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        ring.push_back(Event {
            seq,
            name: name.to_string(),
            fields: fields.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        });
    }

    /// Snapshot of the event ring, oldest first.
    pub fn recent_events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Reset every registered instrument to zero and clear the event ring.
    /// Existing `Arc` handles stay valid. Intended for tests and for
    /// scoping a measurement window.
    pub fn reset(&self) {
        for c in self
            .counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
        {
            c.v.store(0, Ordering::Relaxed);
        }
        for g in self
            .gauges
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
        {
            g.v.store(0, Ordering::Relaxed);
        }
        for h in self
            .histograms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
        {
            h.count.store(0, Ordering::Relaxed);
            h.sum.store(0, Ordering::Relaxed);
            h.max.store(0, Ordering::Relaxed);
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
        self.events_dropped.store(0, Ordering::Relaxed);
    }

    /// Export every instrument and recent event as JSON lines — the one
    /// data path shared by live observability and experiment regeneration.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, c) in self
            .counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
        {
            out.push_str(
                &ObjWriter::new()
                    .str("type", "counter")
                    .str("name", name)
                    .u64("value", c.get())
                    .finish(),
            );
            out.push('\n');
        }
        // The drop count rides along as a synthetic counter so truncated
        // event exports are self-describing.
        out.push_str(
            &ObjWriter::new()
                .str("type", "counter")
                .str("name", "obs.events_dropped")
                .u64("value", self.events_dropped())
                .finish(),
        );
        out.push('\n');
        for (name, g) in self
            .gauges
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
        {
            out.push_str(
                &ObjWriter::new()
                    .str("type", "gauge")
                    .str("name", name)
                    .u64("value", g.get())
                    .finish(),
            );
            out.push('\n');
        }
        for (name, h) in self
            .histograms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
        {
            let mut buckets = String::from("[");
            for (i, (hi, c)) in h.nonzero_buckets().iter().enumerate() {
                if i > 0 {
                    buckets.push(',');
                }
                buckets.push_str(&format!("[{hi},{c}]"));
            }
            buckets.push(']');
            let (p50, p95, p99) = h.quantiles();
            out.push_str(
                &ObjWriter::new()
                    .str("type", "histogram")
                    .str("name", name)
                    .u64("count", h.count())
                    .u64("sum", h.sum())
                    .u64("max", h.max())
                    .f64("p50", p50)
                    .f64("p95", p95)
                    .f64("p99", p99)
                    .raw("buckets", &buckets)
                    .finish(),
            );
            out.push('\n');
        }
        for ev in self.recent_events() {
            let mut w = ObjWriter::new()
                .str("type", "event")
                .u64("seq", ev.seq)
                .str("name", &ev.name);
            for (k, v) in &ev.fields {
                w = w.u64(k, *v);
            }
            out.push_str(&w.finish());
            out.push('\n');
        }
        out
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Shorthand for `global().counter(name)`.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Shorthand for `global().gauge(name)`.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Shorthand for `global().histogram(name)`.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// Shorthand for `global().event(name, fields)`.
pub fn event(name: &str, fields: &[(&str, u64)]) {
    global().event(name, fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn counters_and_gauges_register_once() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("x").get(), 3);
        let g = r.gauge("g");
        g.set(10);
        g.add(5);
        g.sub(20);
        assert_eq!(g.get(), 0, "sub saturates");
        g.record_max(7);
        g.record_max(3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_log2_buckets() {
        let h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1010);
        assert_eq!(h.max(), 1000);
        let buckets = h.nonzero_buckets();
        // 0 → bucket (1,1); 1 → (2,1); 2,3 → (4,2); 4 → (8,1); 1000 → (1024,1)
        assert_eq!(buckets, vec![(1, 1), (2, 1), (4, 2), (8, 1), (1024, 1)]);
    }

    #[test]
    fn event_ring_caps_and_orders() {
        let r = Registry::new();
        for i in 0..2000u64 {
            r.event("e", &[("i", i)]);
        }
        let evs = r.recent_events();
        assert_eq!(evs.len(), 1024);
        assert_eq!(evs.first().unwrap().fields[0].1, 2000 - 1024);
        assert_eq!(evs.last().unwrap().fields[0].1, 1999);
    }

    #[test]
    fn export_round_trips_through_parser() {
        let r = Registry::new();
        r.counter("flash.page_reads").add(640);
        r.gauge("mcu.ram.high_water_bytes").set(4096);
        r.histogram("pds.request_ns").observe(123456);
        r.event("pds.request", &[("granted", 1)]);
        let jsonl = r.export_jsonl();
        let mut kinds = Vec::new();
        for line in jsonl.lines() {
            let j = json::parse(line).expect("every exported line parses");
            kinds.push(
                j.get("type")
                    .and_then(json::Json::as_str)
                    .unwrap()
                    .to_string(),
            );
        }
        // The synthetic obs.events_dropped counter rides after the real ones.
        assert_eq!(kinds, ["counter", "counter", "gauge", "histogram", "event"]);
        let hist_line = jsonl
            .lines()
            .find(|l| l.contains("\"histogram\""))
            .expect("histogram line");
        let j = json::parse(hist_line).unwrap();
        for q in ["p50", "p95", "p99"] {
            assert!(j.get(q).and_then(json::Json::as_f64).is_some(), "{q}");
        }
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.observe(v);
        }
        let (p50, p95, p99) = h.quantiles();
        // Log2 buckets bound the error by one bucket width.
        assert!((32.0..=64.0).contains(&p50), "p50={p50}");
        assert!((64.0..=100.0).contains(&p95), "p95={p95}");
        assert!(p99 >= p95, "p99={p99} >= p95={p95}");
        assert!(p99 <= 100.0, "clamped to observed max");
        let empty = Histogram::default();
        assert_eq!(empty.quantile(0.5), 0.0);
        let one = Histogram::default();
        one.observe(7);
        assert_eq!(one.quantile(0.99), 7.0, "single sample clamps to max");
    }

    #[test]
    fn event_ring_counts_drops_and_resizes() {
        let r = Registry::new();
        for i in 0..10u64 {
            r.event("e", &[("i", i)]);
        }
        assert_eq!(r.events_dropped(), 0);
        r.set_event_capacity(4);
        assert_eq!(r.events_dropped(), 6, "shrink evictions are counted");
        assert_eq!(r.recent_events().len(), 4);
        for i in 0..3u64 {
            r.event("e2", &[("i", i)]);
        }
        assert_eq!(r.events_dropped(), 9);
        assert!(r.export_jsonl().contains("obs.events_dropped"));
        r.reset();
        assert_eq!(r.events_dropped(), 0);
        assert_eq!(r.event_capacity(), 4, "reset keeps the capacity");
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let r = Registry::new();
        let c = r.counter("c");
        c.add(5);
        r.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(r.counter("c").get(), 1);
    }
}

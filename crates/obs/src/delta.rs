//! Mergeable metric deltas — the unit of fleet telemetry.
//!
//! A [`MetricsDelta`] is a deterministic, order-independent snapshot of
//! metric *increments*: counter adds, gauge observations with an
//! explicit [`GaugePolicy`], and log2-bucket histogram increments. Two
//! deltas [`merge`](MetricsDelta::merge) into one, and the merge is
//! **associative and commutative** (proven by tests under permuted
//! shard orders), which is what lets a fleet fold per-token telemetry
//! into one rollup no matter how many workers produced it, in what
//! order the bus delivered it, or how the shards were cut:
//!
//! * **counters** add;
//! * **gauges** fold under their policy — [`GaugePolicy::Max`]
//!   (high-water marks: `mcu.ram.peak_bytes`) or [`GaugePolicy::Sum`]
//!   (additive occupancy: resident tokens per shard). The policy rides
//!   in the delta next to the value; merging the same gauge under two
//!   different policies would not be associative, so a mismatch is
//!   counted in [`MetricsDelta::policy_conflicts`] (a plain additive
//!   counter) and resolved by `Max` — loud in the rollup, never silent;
//! * **histograms** add bucket-wise (same log2 bucket layout as
//!   [`Histogram`](crate::metrics::Histogram)), sums add, maxima fold
//!   by max — so quantile estimates of a merged histogram are exactly
//!   the estimates of the union of observations.
//!
//! Everything is `BTreeMap`-ordered: encoding, JSON export and
//! iteration are bit-identical for equal contents. The binary wire form
//! ([`encode`](MetricsDelta::encode) / [`decode`](MetricsDelta::decode))
//! is what rides the fleet bus as a telemetry envelope payload.
//!
//! [`DeltaTracker`] turns a (sharded or global) [`Registry`] into a
//! periodic delta stream: each [`take`](DeltaTracker::take) returns
//! what changed since the previous take.

use std::collections::BTreeMap;

use crate::json::{write_str, ObjWriter};
use crate::metrics::Registry;

/// How two observations of the same gauge fold into one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GaugePolicy {
    /// High-water mark: merged value is the max (RAM peaks, queue
    /// depth ceilings). The default for registry snapshots.
    Max,
    /// Additive occupancy: merged value is the sum (resident tokens per
    /// shard, bytes held per worker).
    Sum,
}

impl GaugePolicy {
    fn tag(self) -> u8 {
        match self {
            GaugePolicy::Max => 0,
            GaugePolicy::Sum => 1,
        }
    }

    fn from_tag(t: u8) -> Option<Self> {
        match t {
            0 => Some(GaugePolicy::Max),
            1 => Some(GaugePolicy::Sum),
            _ => None,
        }
    }
}

/// One gauge entry: the value plus the policy it merges under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeCell {
    /// Observed value.
    pub value: u64,
    /// Merge policy.
    pub policy: GaugePolicy,
}

/// Histogram increments in the same log2 buckets as
/// [`Histogram`](crate::metrics::Histogram): bucket `i` counts values
/// `2^(i-1) ≤ v < 2^i` (bucket 0 counts `v == 0`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistDelta {
    /// Observations in this delta.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Largest observation (high-water across merges).
    pub max: u64,
    /// Sparse `bucket index → count`, only non-zero buckets.
    pub buckets: BTreeMap<u8, u64>,
}

impl HistDelta {
    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
        let b = if v == 0 {
            0u8
        } else {
            (64 - v.leading_zeros() as u8).min(63)
        };
        *self.buckets.entry(b).or_insert(0) += 1;
    }

    /// Fold `other` in: counts and buckets add, maxima fold by max.
    pub fn merge(&mut self, other: &HistDelta) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        for (b, c) in &other.buckets {
            *self.buckets.entry(*b).or_insert(0) += c;
        }
    }

    /// Quantile estimate interpolated from the log2 buckets — the same
    /// estimator as [`Histogram::quantile`](crate::metrics::Histogram::quantile),
    /// so a merged rollup answers p50/p95/p99 exactly like a live
    /// instrument would over the union of observations. 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (&i, &c) in &self.buckets {
            if seen + c >= rank {
                let (lo, hi) = if i == 0 {
                    (0u64, 1u64)
                } else {
                    (1u64 << (i - 1), 1u64 << i.min(63))
                };
                let frac = (rank - seen) as f64 / c as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                return est.min(self.max as f64);
            }
            seen += c;
        }
        self.max as f64
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A deterministic, mergeable snapshot of metric increments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsDelta {
    /// Counter increments, additive under merge.
    pub counters: BTreeMap<String, u64>,
    /// Gauge observations with their merge policy.
    pub gauges: BTreeMap<String, GaugeCell>,
    /// Histogram increments.
    pub hists: BTreeMap<String, HistDelta>,
    /// Same-name gauges merged under conflicting policies — additive,
    /// so a rollup inherits every conflict any shard saw.
    pub policy_conflicts: u64,
}

impl MetricsDelta {
    /// An empty delta.
    pub fn new() -> Self {
        MetricsDelta::default()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
            && self.policy_conflicts == 0
    }

    /// Add `n` to counter `name`.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Record gauge `name` at `value` under `policy`. Re-recording in
    /// the same delta folds under the policy.
    pub fn record_gauge(&mut self, name: &str, value: u64, policy: GaugePolicy) {
        merge_gauge(
            &mut self.gauges,
            &mut self.policy_conflicts,
            name,
            GaugeCell { value, policy },
        );
    }

    /// Observe `v` in histogram `name`.
    pub fn observe(&mut self, name: &str, v: u64) {
        self.hists.entry(name.to_string()).or_default().observe(v);
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).map_or(0, |g| g.value)
    }

    /// Histogram delta, if recorded.
    pub fn hist(&self, name: &str) -> Option<&HistDelta> {
        self.hists.get(name)
    }

    /// Fold `other` into `self`. Associative and commutative: folding a
    /// set of deltas yields one result regardless of grouping or order.
    pub fn merge(&mut self, other: &MetricsDelta) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        self.policy_conflicts += other.policy_conflicts;
        for (k, cell) in &other.gauges {
            merge_gauge(&mut self.gauges, &mut self.policy_conflicts, k, *cell);
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Fold this delta into a live [`Registry`], each metric name
    /// prefixed with `prefix` — how a collector surfaces its rollup in
    /// the ordinary `report --metrics` export.
    pub fn publish_into(&self, reg: &Registry, prefix: &str) {
        for (k, v) in &self.counters {
            reg.counter(&format!("{prefix}{k}")).add(*v);
        }
        for (k, cell) in &self.gauges {
            let g = reg.gauge(&format!("{prefix}{k}"));
            match cell.policy {
                GaugePolicy::Max => g.record_max(cell.value),
                GaugePolicy::Sum => g.add(cell.value),
            }
        }
        for (k, h) in &self.hists {
            let hist = reg.histogram(&format!("{prefix}{k}"));
            for (&b, &c) in &h.buckets {
                // Re-observe one representative value per bucket: the
                // bucket's lower bound keeps the count and shape.
                let v = if b == 0 { 0 } else { 1u64 << (b - 1) };
                for _ in 0..c {
                    hist.observe(v);
                }
            }
        }
    }

    /// Binary wire form (the bus envelope payload). Stable and
    /// versioned; [`decode`](MetricsDelta::decode) inverts it.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.policy_conflicts.to_le_bytes());
        out.extend_from_slice(&(self.counters.len() as u32).to_le_bytes());
        for (k, v) in &self.counters {
            put_str(&mut out, k);
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.gauges.len() as u32).to_le_bytes());
        for (k, cell) in &self.gauges {
            put_str(&mut out, k);
            out.push(cell.policy.tag());
            out.extend_from_slice(&cell.value.to_le_bytes());
        }
        out.extend_from_slice(&(self.hists.len() as u32).to_le_bytes());
        for (k, h) in &self.hists {
            put_str(&mut out, k);
            out.extend_from_slice(&h.count.to_le_bytes());
            out.extend_from_slice(&h.sum.to_le_bytes());
            out.extend_from_slice(&h.max.to_le_bytes());
            out.extend_from_slice(&(h.buckets.len() as u16).to_le_bytes());
            for (&b, &c) in &h.buckets {
                out.push(b);
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        out
    }

    /// Parse a wire-form delta. `None` on truncation, bad magic, or an
    /// unknown gauge policy.
    pub fn decode(bytes: &[u8]) -> Option<MetricsDelta> {
        let mut r = Reader { bytes, off: 0 };
        if r.take(MAGIC.len())? != MAGIC {
            return None;
        }
        let mut d = MetricsDelta {
            policy_conflicts: r.u64()?,
            ..MetricsDelta::default()
        };
        for _ in 0..r.u32()? {
            let k = r.str()?;
            d.counters.insert(k, r.u64()?);
        }
        for _ in 0..r.u32()? {
            let k = r.str()?;
            let policy = GaugePolicy::from_tag(r.u8()?)?;
            let value = r.u64()?;
            d.gauges.insert(k, GaugeCell { value, policy });
        }
        for _ in 0..r.u32()? {
            let k = r.str()?;
            let mut h = HistDelta {
                count: r.u64()?,
                sum: r.u64()?,
                max: r.u64()?,
                buckets: BTreeMap::new(),
            };
            for _ in 0..r.u16()? {
                let b = r.u8()?;
                h.buckets.insert(b, r.u64()?);
            }
            d.hists.insert(k, h);
        }
        (r.off == bytes.len()).then_some(d)
    }

    /// One-line JSON rendering (key-ordered, bit-identical for equal
    /// contents) — the export form of a rollup bucket.
    pub fn to_json(&self) -> String {
        let mut counters = String::from("{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                counters.push(',');
            }
            write_str(&mut counters, k);
            counters.push_str(&format!(":{v}"));
        }
        counters.push('}');
        let mut gauges = String::from("{");
        for (i, (k, cell)) in self.gauges.iter().enumerate() {
            if i > 0 {
                gauges.push(',');
            }
            write_str(&mut gauges, k);
            gauges.push_str(&format!(
                ":[{},{}]",
                cell.value,
                match cell.policy {
                    GaugePolicy::Max => "\"max\"",
                    GaugePolicy::Sum => "\"sum\"",
                }
            ));
        }
        gauges.push('}');
        let mut hists = String::from("{");
        for (i, (k, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                hists.push(',');
            }
            write_str(&mut hists, k);
            // Every registered histogram answers its quantiles — the
            // same p50/p95/p99 triple for all of them, never a
            // hardwired subset (the live `Registry::export_jsonl` and
            // this rollup form must agree on what a histogram exports).
            hists.push_str(&format!(
                ":[{},{},{},{},{},{}]",
                h.count,
                h.sum,
                h.max,
                h.quantile(0.50) as u64,
                h.quantile(0.95) as u64,
                h.quantile(0.99) as u64
            ));
        }
        hists.push('}');
        ObjWriter::new()
            .raw("counters", &counters)
            .raw("gauges", &gauges)
            .raw("hists", &hists)
            .u64("policy_conflicts", self.policy_conflicts)
            .finish()
    }
}

const MAGIC: &[u8] = b"PDM1";

fn merge_gauge(
    gauges: &mut BTreeMap<String, GaugeCell>,
    conflicts: &mut u64,
    name: &str,
    incoming: GaugeCell,
) {
    match gauges.get_mut(name) {
        None => {
            gauges.insert(name.to_string(), incoming);
        }
        Some(cur) if cur.policy == incoming.policy => {
            cur.value = match cur.policy {
                GaugePolicy::Max => cur.value.max(incoming.value),
                GaugePolicy::Sum => cur.value.saturating_add(incoming.value),
            };
        }
        Some(cur) => {
            // Conflicting policies cannot merge associatively; count the
            // conflict and fall back to the Max fold so the rollup stays
            // defined (and the conflict counter makes it visible).
            *conflicts += 1;
            cur.policy = GaugePolicy::Max;
            cur.value = cur.value.max(incoming.value);
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let b = s.as_bytes();
    out.extend_from_slice(&(b.len().min(u16::MAX as usize) as u16).to_le_bytes());
    out.extend_from_slice(&b[..b.len().min(u16::MAX as usize)]);
}

struct Reader<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.bytes.get(self.off..self.off + n)?;
        self.off += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn str(&mut self) -> Option<String> {
        let n = self.u16()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }
}

impl Registry {
    /// Snapshot every instrument as a cumulative [`MetricsDelta`]:
    /// counters and histograms at their current totals, gauges at their
    /// current value under [`GaugePolicy::Max`] (the safe fold for the
    /// registry's high-water and occupancy gauges alike).
    pub fn snapshot_delta(&self) -> MetricsDelta {
        let mut d = MetricsDelta::new();
        for (k, v) in self.counter_values() {
            if v > 0 {
                d.counters.insert(k, v);
            }
        }
        for (k, v) in self.gauge_values() {
            if v > 0 {
                d.gauges.insert(
                    k,
                    GaugeCell {
                        value: v,
                        policy: GaugePolicy::Max,
                    },
                );
            }
        }
        for (k, h) in self.histogram_handles() {
            if h.count() == 0 {
                continue;
            }
            d.hists.insert(
                k,
                HistDelta {
                    count: h.count(),
                    sum: h.sum(),
                    max: h.max(),
                    buckets: h.bucket_counts().into_iter().collect(),
                },
            );
        }
        d
    }
}

/// Turns a registry into a periodic delta stream: every
/// [`take`](DeltaTracker::take) returns what changed since the last
/// take. Counters and histogram buckets are subtracted (they are
/// monotonic between registry resets); gauges report their current
/// value when it changed, and histogram `max` carries the cumulative
/// high-water (a max since an arbitrary cut cannot be reconstructed).
/// Re-create the tracker after [`Registry::reset`].
#[derive(Debug, Default)]
pub struct DeltaTracker {
    last: MetricsDelta,
}

impl DeltaTracker {
    /// A tracker whose first take returns the full cumulative snapshot.
    pub fn new() -> Self {
        DeltaTracker::default()
    }

    /// The changes in `reg` since the previous take (empty if nothing
    /// moved).
    pub fn take(&mut self, reg: &Registry) -> MetricsDelta {
        let cur = reg.snapshot_delta();
        let mut d = MetricsDelta::new();
        for (k, &v) in &cur.counters {
            let prev = self.last.counters.get(k).copied().unwrap_or(0);
            if v > prev {
                d.counters.insert(k.clone(), v - prev);
            }
        }
        for (k, cell) in &cur.gauges {
            if self.last.gauges.get(k).map(|c| c.value) != Some(cell.value) {
                d.gauges.insert(k.clone(), *cell);
            }
        }
        for (k, h) in &cur.hists {
            let prev = self.last.hists.get(k);
            let prev_count = prev.map_or(0, |p| p.count);
            if h.count <= prev_count {
                continue;
            }
            let mut dh = HistDelta {
                count: h.count - prev_count,
                sum: h.sum - prev.map_or(0, |p| p.sum),
                max: h.max,
                buckets: BTreeMap::new(),
            };
            for (&b, &c) in &h.buckets {
                let pc = prev.and_then(|p| p.buckets.get(&b)).copied().unwrap_or(0);
                if c > pc {
                    dh.buckets.insert(b, c - pc);
                }
            }
            d.hists.insert(k.clone(), dh);
        }
        self.last = cur;
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u64) -> MetricsDelta {
        let mut d = MetricsDelta::new();
        d.add("bus.deliveries", 10 + i);
        d.add("tok.crypto_ops", i * 3);
        d.record_gauge("ram.peak", 100 * (i + 1), GaugePolicy::Max);
        d.record_gauge("shard.resident", 2 + i, GaugePolicy::Sum);
        for v in [0, 1, i + 5, 1000 * (i + 1)] {
            d.observe("deliver_ticks", v);
        }
        d
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let (a, b, c) = (sample(1), sample(2), sample(9));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "commutative");
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "associative");
    }

    #[test]
    fn merge_folds_every_shard_order_identically() {
        let shards: Vec<MetricsDelta> = (0..6).map(sample).collect();
        let fold = |order: &[usize]| {
            let mut acc = MetricsDelta::new();
            for &i in order {
                acc.merge(&shards[i]);
            }
            acc
        };
        let reference = fold(&[0, 1, 2, 3, 4, 5]);
        for order in [[5, 4, 3, 2, 1, 0], [2, 0, 4, 1, 5, 3], [3, 5, 1, 0, 2, 4]] {
            assert_eq!(reference, fold(&order), "order {order:?}");
        }
        assert_eq!(reference.counter("bus.deliveries"), 10 * 6 + 15);
        assert_eq!(reference.gauge("ram.peak"), 600, "max policy");
        assert_eq!(reference.gauge("shard.resident"), 2 * 6 + 15, "sum policy");
        assert_eq!(reference.hist("deliver_ticks").unwrap().count, 24);
    }

    #[test]
    fn policy_conflict_is_counted_not_silent() {
        let mut a = MetricsDelta::new();
        a.record_gauge("g", 5, GaugePolicy::Sum);
        let mut b = MetricsDelta::new();
        b.record_gauge("g", 9, GaugePolicy::Max);
        a.merge(&b);
        assert_eq!(a.policy_conflicts, 1);
        assert_eq!(a.gauge("g"), 9, "falls back to the max fold");
    }

    #[test]
    fn wire_form_round_trips() {
        let d = sample(3);
        let enc = d.encode();
        assert_eq!(MetricsDelta::decode(&enc), Some(d.clone()));
        assert_eq!(MetricsDelta::decode(&enc[..enc.len() - 1]), None);
        assert_eq!(MetricsDelta::decode(b"nope"), None);
        assert_eq!(MetricsDelta::decode(&[]), None);
        let empty = MetricsDelta::new();
        assert_eq!(MetricsDelta::decode(&empty.encode()), Some(empty));
    }

    #[test]
    fn hist_delta_quantiles_match_live_histogram() {
        let live = crate::metrics::Histogram::default();
        let mut d = HistDelta::default();
        for v in 1..=100u64 {
            live.observe(v);
            d.observe(v);
        }
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(d.quantile(q), live.quantile(q), "q={q}");
        }
        assert_eq!(d.mean(), live.mean());
    }

    #[test]
    fn hist_delta_quantile_edge_cases() {
        let empty = HistDelta::default();
        assert_eq!(empty.quantile(0.99), 0.0, "empty histogram");
        assert_eq!(empty.mean(), 0.0);

        let mut one = HistDelta::default();
        one.observe(42);
        assert_eq!(one.quantile(0.5), 42.0, "single sample clamps to max");
        assert_eq!(one.quantile(0.0), 42.0);
        assert_eq!(one.quantile(1.0), 42.0);

        // All observations in one bucket: [64, 128).
        let mut packed = HistDelta::default();
        for _ in 0..50 {
            packed.observe(100);
        }
        for q in [0.01, 0.5, 0.99] {
            let v = packed.quantile(q);
            assert!((64.0..=100.0).contains(&v), "q={q} v={v}");
        }
        assert_eq!(packed.quantile(1.0), 100.0, "clamped to observed max");

        // Zero-only histogram: bucket 0 spans [0, 1).
        let mut zeros = HistDelta::default();
        zeros.observe(0);
        zeros.observe(0);
        assert_eq!(zeros.quantile(0.99), 0.0);
    }

    #[test]
    fn registry_snapshot_and_tracker_deltas() {
        let r = Registry::new();
        r.counter("c").add(5);
        r.gauge("g").set(7);
        r.histogram("h").observe(3);
        let mut t = DeltaTracker::new();
        let first = t.take(&r);
        assert_eq!(first.counter("c"), 5);
        assert_eq!(first.gauge("g"), 7);
        assert_eq!(first.hist("h").unwrap().count, 1);

        // Nothing moved: the next take is empty.
        assert!(t.take(&r).is_empty());

        r.counter("c").add(2);
        r.histogram("h").observe(900);
        let d = t.take(&r);
        assert_eq!(d.counter("c"), 2, "only the increment");
        assert_eq!(d.hist("h").unwrap().count, 1);
        assert_eq!(d.hist("h").unwrap().max, 900);
        assert!(!d.gauges.contains_key("g"), "unchanged gauge not re-sent");

        // Tracker deltas re-merge into the cumulative snapshot.
        let mut acc = first;
        acc.merge(&d);
        assert_eq!(acc.counter("c"), 7);
        assert_eq!(acc.hist("h").unwrap().count, 2);
    }

    #[test]
    fn json_export_is_stable() {
        let d = sample(0);
        assert_eq!(d.to_json(), sample(0).to_json());
        let j = crate::json::parse(&d.to_json()).expect("delta JSON parses");
        assert_eq!(
            j.get("counters")
                .and_then(|c| c.get("bus.deliveries"))
                .and_then(crate::json::Json::as_u64),
            Some(10)
        );
    }

    #[test]
    fn json_export_quantiles_every_histogram_uniformly() {
        // Regression: the rollup export used to render histograms as
        // bare [count, sum, max] while the live registry exported
        // p50/p95/p99 — quantiles existed only for whichever histograms
        // a consumer re-derived by hand. Every registered histogram now
        // carries the same [count, sum, max, p50, p95, p99] sextuple.
        let mut d = sample(0);
        for v in [1, 2, 3] {
            d.observe("second_hist", v);
        }
        let j = crate::json::parse(&d.to_json()).expect("delta JSON parses");
        let hists = j.get("hists").expect("hists object");
        for name in ["deliver_ticks", "second_hist"] {
            let row = hists.get(name).and_then(crate::json::Json::as_arr).unwrap();
            assert_eq!(row.len(), 6, "{name}: uniform sextuple");
            let h = d.hist(name).unwrap();
            assert_eq!(row[3].as_u64(), Some(h.quantile(0.50) as u64), "{name} p50");
            assert_eq!(row[4].as_u64(), Some(h.quantile(0.95) as u64), "{name} p95");
            assert_eq!(row[5].as_u64(), Some(h.quantile(0.99) as u64), "{name} p99");
        }
    }
}

//! # pds-obs — zero-dependency observability for the PDS stack
//!
//! The tutorial's Part II argument is quantitative: every embedded
//! technique is justified by an observable cost ("Summary Scan: 17 IOs vs
//! Table scan: 640 IOs", "1 RAM page per query keyword", RAM < 128 KB).
//! This crate makes those numbers visible in the *running* system, not
//! just in bench harnesses:
//!
//! * [`metrics`] — a thread-safe registry of atomic counters, gauges and
//!   log2-bucket histograms, a ring buffer of recent events, and a
//!   hand-rolled [JSON-lines exporter](metrics::Registry::export_jsonl).
//! * [`trace`] — hierarchical span guards ([`trace::span`] /
//!   [`span!`]) that instrumented layers annotate with I/O deltas, RAM
//!   peaks and policy decisions, and [`trace::QueryTrace`], the per-query
//!   "explain" report checked against the paper's claimed budgets.
//! * [`delta`] — mergeable metric snapshots ([`delta::MetricsDelta`])
//!   with an associative/commutative `merge`, the unit of the fleet's
//!   in-band telemetry plane: per-shard registries are snapshotted,
//!   shipped over the bus, and folded into deterministic rollups.
//! * [`json`] — the minimal JSON writer/parser behind the exporter, so
//!   exports round-trip without external crates.
//! * [`rng`] — deterministic SplitMix64 / xoshiro256++ generators with a
//!   `rand`-shaped API, so the workspace builds hermetically offline.
//!
//! The crate intentionally has **zero dependencies** (only `std`): it
//! sits below every other crate of the workspace, including the flash
//! simulator.

pub mod delta;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod rng;
pub mod trace;

pub use delta::{DeltaTracker, GaugePolicy, HistDelta, MetricsDelta};
pub use flight::{EventFrame, Severity};
pub use metrics::{counter, event, gauge, histogram, Counter, Gauge, Histogram, Registry};
pub use trace::{
    take_last_root, AttrValue, BudgetCheck, CriticalHop, FinishedSpan, FleetTrace, QueryTrace,
    SpanGuard, TraceContext,
};

/// Resource budgets claimed by the tutorial's slides, used by
/// [`trace::QueryTrace::check_budgets`] callers and the runtime
/// validators in the search engine.
pub mod budgets {
    /// "RAM is a few dozen KB": the secure-MCU ceiling used throughout
    /// Part II (128 KB).
    pub const RAM_BYTES: u64 = 128 * 1024;
    /// "1 RAM page per query keyword" — the search engine's cursor claim.
    pub const RAM_PAGES_PER_QUERY_KEYWORD: u64 = 1;
    /// "Summary Scan: 17 IOs" for the E1 selection workload.
    pub const SUMMARY_SCAN_IOS: u64 = 17;
    /// "Table scan: 640 IOs" for the E1 selection workload.
    pub const TABLE_SCAN_IOS: u64 = 640;
}

/// Record a structured flight-recorder event (see [`flight`]):
/// `event!(Severity::Warn, subsystem::FLASH, code::FLASH_BLOCK_RETIRED, block)`.
/// Frames below the severity floor cost one atomic load; up to two
/// `u64`-convertible args ride the frame. The owning token drains the
/// staged frames into its durable black-box ring.
#[macro_export]
macro_rules! event {
    ($sev:expr, $sub:expr, $code:expr) => {
        $crate::flight::record($sev, $sub, $code, [0u64, 0u64])
    };
    ($sev:expr, $sub:expr, $code:expr, $a:expr) => {
        $crate::flight::record($sev, $sub, $code, [$a as u64, 0u64])
    };
    ($sev:expr, $sub:expr, $code:expr, $a:expr, $b:expr) => {
        $crate::flight::record($sev, $sub, $code, [$a as u64, $b as u64])
    };
}

/// Open a span: `span!("db.select")`, optionally with initial attributes:
/// `span!("db.select", "db.table" => table, "db.plan" => "FullScan")`.
/// Returns a [`trace::SpanGuard`]; the span finishes when the guard drops.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::span($name)
    };
    ($name:expr, $($key:expr => $val:expr),+ $(,)?) => {{
        let guard = $crate::trace::span($name);
        $(guard.set($key, $val);)+
        guard
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn span_macro_sets_initial_attrs() {
        {
            let _g = span!("m.test", "k" => 7u64, "label" => "x");
        }
        let root = crate::trace::take_last_root().unwrap();
        assert_eq!(root.attr_u64("k"), Some(7));
        assert_eq!(root.attr("label").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn budgets_are_the_papers_numbers() {
        assert_eq!(
            crate::budgets::TABLE_SCAN_IOS / crate::budgets::SUMMARY_SCAN_IOS,
            37
        );
        assert_eq!(crate::budgets::RAM_BYTES, 131072);
    }
}

#!/usr/bin/env bash
# The full offline CI gate: format, lint, build, test.
# No network access required — the workspace has zero external deps.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
# Project-specific static analysis: panic-freedom (direct and
# call-graph-transitive), plaintext-egress information flow,
# determinism, RAM-budget and layering contracts (see DESIGN.md
# "Static guarantees"). Exits nonzero on any unwaived finding; the
# machine-readable findings report is kept as a build artifact.
mkdir -p target/lint
cargo run --release -q -p pds-lint -- --json > target/lint/findings.json || {
  cat target/lint/findings.json
  exit 1
}
cargo build --workspace --release
cargo test --workspace -q
# Widened seeded crash-recovery sweep: a fixed, larger seed set than the
# default 48 so every gate run exercises the fault paths broadly.
PDS_CRASH_SEEDS=256 cargo test -p pds-flash -q seeded_crash_recovery_sweep
# Fleet smoke sweep: a small tokens × threads × connectivity run of the
# phased secure-aggregation job, with the pds-obs registry exported so
# the fleet.* counters are visible in the gate log.
PDS_E14_TOKENS=64 PDS_E14_MAX_THREADS=4 \
  cargo run --release -q -p pds-bench --bin report -- --metrics e14
# Telemetry-plane smoke: the E16 rollup-convergence sweep at CI scale,
# then the standard fleet SLO set evaluated over the run's own metrics
# (`fleet status` rendering + JSON). Exits nonzero on an UNHEALTHY
# verdict, so a redelivery-ratio or pages-lost regression fails the
# gate, not just a dashboard.
PDS_E16_TOKENS=64 PDS_E16_MAX_THREADS=4 \
  cargo run --release -q -p pds-bench --bin report -- --fleet-health e16
# Event-driven scheduler smoke: the full aggregation at 10k tokens under
# a tight resident cap — peak residency must stay at the cap and every
# cell re-proves bit-identical results against a 1-worker re-run.
PDS_E17_TOKENS=10000 PDS_E17_MAX_THREADS=4 PDS_E17_CAP=2048 \
  cargo run --release -q -p pds-bench --bin report -- e17
# MVCC change-log smoke: delta cell reconcile must reach the full-sync
# witness bit-identically (checked at 1/2/8 workers) while moving ≥5×
# fewer idle-round payload bytes, and the subscription fleet must stay
# exactly-once with tokens power-cycled between rounds.
PDS_E18_CELLS=128 PDS_E18_MAX_THREADS=4 \
  cargo run --release -q -p pds-bench --bin report -- e18
# Crash-storm forensics smoke: E19 at CI scale — seeded power losses
# mid-aggregation-round, every victim reopened, triaged fleet-wide with
# bit-identical forensics across worker counts — plus the seeded
# post-mortem JSON kept as a build artifact.
mkdir -p target/forensics
PDS_E19_TOKENS=24 PDS_E19_MAX_THREADS=4 \
  cargo run --release -q -p pds-bench --bin report -- \
  --forensics-json target/forensics/postmortem.json e19
# Deterministic cost baseline: replay the scope and env knobs recorded
# in BENCH_BASELINE.json and compare every deterministic metric (flash
# IO, bus delivery, recovery, RAM high-water, lint posture) exactly.
# Fails naming each drifted metric; regenerate intentionally with
#   cargo run --release -p pds-bench --bin report -- \
#     --baseline BENCH_BASELINE.json e1 e3 e13 e14 e15 e16 e17 e18 e19
# (env knobs as recorded) and commit the diff.
cargo run --release -q -p pds-bench --bin report -- --check BENCH_BASELINE.json

#!/usr/bin/env bash
# The full offline CI gate: format, lint, build, test.
# No network access required — the workspace has zero external deps.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --workspace --release
cargo test --workspace -q

//! Integration: the in-band fleet telemetry plane's determinism
//! contract.
//!
//! The claims under test: (1) the collector's rollup and the
//! `FleetHealth` verdict are bit-for-bit identical at 1, 2, and 8
//! worker threads — telemetry envelopes ride the same seeded bus as the
//! protocol, so thread scheduling is unobservable in the time series;
//! (2) delta merging is associative/commutative under permuted shard
//! orders, which is *why* (1) holds; (3) turning telemetry on never
//! perturbs the protocol's own observables.

use pds::fleet::{
    build_fleet, fleet_secure_aggregation, FleetAggReport, FleetConfig, HealthEngine, OnTamper,
    TelemetryConfig,
};
use pds::global::ssi::SsiThreat;
use pds::global::GroupByQuery;
use pds::obs::{GaugePolicy, MetricsDelta};

fn run_fleet(workers: usize, connectivity: f64, telemetry: bool) -> FleetAggReport {
    let mut cfg = FleetConfig::new(40, workers, 0x7E1E);
    cfg.partition_size = 16;
    cfg.bus.connectivity = connectivity;
    cfg.telemetry = telemetry.then(TelemetryConfig::default);
    let query = GroupByQuery::bank_by_category();
    let mut fleet = build_fleet(&cfg, &query).unwrap();
    fleet_secure_aggregation(
        &cfg,
        &query,
        &mut fleet,
        SsiThreat::HonestButCurious,
        OnTamper::Abort,
    )
    .unwrap()
}

#[test]
fn rollup_and_health_are_identical_at_1_2_and_8_workers() {
    let one = run_fleet(1, 1.0, true);
    let tele = one.telemetry.as_ref().expect("telemetry requested");
    assert!(tele.health.healthy, "{}", tele.health.render());
    assert!(tele.msgs > 0 && tele.bytes > 0);
    for workers in [2, 8] {
        let many = run_fleet(workers, 1.0, true);
        assert_eq!(one.result, many.result, "{workers} workers: result");
        assert_eq!(
            one.telemetry, many.telemetry,
            "{workers} workers: full telemetry summary"
        );
        let t = many.telemetry.unwrap();
        assert_eq!(tele.rollup, t.rollup, "{workers} workers: rollup");
        assert_eq!(
            tele.health.render(),
            t.health.render(),
            "{workers} workers: fleet status rendering"
        );
        assert_eq!(
            tele.health.to_json(),
            t.health.to_json(),
            "{workers} workers: health JSON export"
        );
    }
}

#[test]
fn weak_fabric_rollups_are_still_thread_count_independent() {
    let one = run_fleet(1, 0.3, true);
    let eight = run_fleet(8, 0.3, true);
    assert_eq!(one.telemetry, eight.telemetry);
    let tele = one.telemetry.unwrap();
    // The rollup saw the fabric itself: losses and backoff happened on
    // a 30%-connectivity bus and the driver folded them in-band.
    assert!(tele.rollup.counter("bus.losses") > 0);
    assert!(tele.rollup.counter("bus.backoff_events") > 0);
    assert_eq!(tele.stats.decode_errors, 0);
}

#[test]
fn rollup_accounts_match_the_protocol_report() {
    let rep = run_fleet(4, 1.0, true);
    let tele = rep.telemetry.unwrap();
    // The driver's bus-stats deltas sum to the final cumulative stats.
    assert_eq!(tele.rollup.counter("bus.deliveries"), rep.bus.delivered);
    assert_eq!(tele.rollup.counter("bus.sent"), rep.bus.sent);
    assert_eq!(
        tele.rollup.counter("tok.result_received"),
        rep.result_coverage as u64
    );
    // Every token contributed (1–3 records each), plus the SSI and the
    // collector's self-observations.
    assert!(tele.sources >= 40 + 2);
    assert_eq!(tele.rollup.counter("telemetry.msgs"), tele.msgs);
    // Telemetry is a minority of bus traffic, not the protocol's equal.
    assert!(tele.bytes < rep.bus.payload_bytes / 2);
}

#[test]
fn telemetry_does_not_perturb_the_protocol() {
    let off = run_fleet(2, 0.3, false);
    let on = run_fleet(2, 0.3, true);
    assert!(off.telemetry.is_none());
    assert_eq!(off.result, on.result);
    assert_eq!(off.expected, on.expected);
    assert_eq!(off.leakage, on.leakage, "SSI saw the same protocol bytes");
    assert_eq!(off.stats, on.stats, "same protocol work accounting");
}

#[test]
fn custom_rules_fail_deterministically() {
    let mut engine = HealthEngine::new();
    engine.rule("bus.sent == 0").unwrap();
    engine
        .rule("tok.contributions / bus.deliveries < 0.0001")
        .unwrap();
    let verdict = |workers: usize| {
        let rep = run_fleet(workers, 1.0, true);
        engine.evaluate(&rep.telemetry.unwrap().rollup)
    };
    let one = verdict(1);
    assert!(!one.healthy);
    assert!(one.verdicts.iter().all(|v| !v.pass));
    assert_eq!(one, verdict(8));
}

#[test]
fn shard_order_permutations_fold_to_one_rollup() {
    // The property the whole plane rests on, at the integration seam:
    // per-shard deltas folded in any order give one rollup.
    let shard = |i: u64| {
        let mut d = MetricsDelta::new();
        d.add("bus.deliveries", 100 + i);
        d.add("bus.redeliveries", 40 + i);
        d.record_gauge("mcu.ram.peak_bytes", 1000 * (i + 1), GaugePolicy::Max);
        d.record_gauge("shard.tokens", 8, GaugePolicy::Sum);
        for v in [1, 50, 900 + i] {
            d.observe("deliver_ticks", v);
        }
        d
    };
    let fold = |order: &[u64]| {
        let mut acc = MetricsDelta::new();
        for &i in order {
            acc.merge(&shard(i));
        }
        acc
    };
    let reference = fold(&[0, 1, 2, 3, 4]);
    for order in [[4, 3, 2, 1, 0], [2, 4, 0, 3, 1], [1, 0, 4, 2, 3]] {
        assert_eq!(reference, fold(&order), "order {order:?}");
    }
    assert_eq!(reference.gauge("mcu.ram.peak_bytes"), 5000, "max policy");
    assert_eq!(reference.gauge("shard.tokens"), 40, "sum policy");
    // And the health engine sees one truth regardless of fold order.
    let h = HealthEngine::standard().evaluate(&reference);
    assert_eq!(
        h,
        HealthEngine::standard().evaluate(&fold(&[3, 1, 4, 0, 2]))
    );
    assert!(!h.healthy, "redelivery ratio breaches the standard SLO");
}

//! Integration: the full Part II embedded stack on one chip — tables,
//! PBFilter, reorganization, climbing indexes and the search engine
//! sharing flash and RAM, with properties checked end to end.

use pds::db::climbing::{execute_spj, execute_spj_naive, TjoinIndex, TselectIndex};
use pds::db::tpcd::{TpcdConfig, TpcdData};
use pds::db::value::{ColumnType, Schema};
use pds::db::{Database, Predicate, QueryPlan, Value};
use pds::flash::{Flash, FlashGeometry};
use pds::mcu::RamBudget;
use pds::search::{DfStrategy, NaiveSearch, SearchEngine};
use pds_obs::rng::{Rng, SeedableRng, StdRng};

#[test]
fn database_and_search_engine_share_one_chip() {
    let f = Flash::new(FlashGeometry::new(512, 16, 2048));
    let ram = RamBudget::new(64 * 1024);
    let mut db = Database::new(&f, &ram);
    db.create_table(
        "NOTES",
        Schema::new(&[("day", ColumnType::U64), ("tag", ColumnType::Str)]),
    )
    .unwrap();
    let mut engine = SearchEngine::new(&f, &ram, 16, 64, DfStrategy::TwoPass).unwrap();
    for i in 0..400u64 {
        db.insert(
            "NOTES",
            vec![Value::U64(i), Value::Str(format!("tag{}", i % 9))],
        )
        .unwrap();
        engine
            .index_document(&format!("note number {i} tagged tag{}", i % 9))
            .unwrap();
    }
    db.create_index("NOTES", "tag").unwrap();
    // Both answer correctly off the same chip.
    let rows = db
        .select("NOTES", &Predicate::eq("tag", Value::str("tag3")))
        .unwrap();
    assert_eq!(rows.len(), 400 / 9 + 1);
    let hits = engine.search(&["tag3"], 50).unwrap();
    assert_eq!(hits.len(), 45);
    // Zero block erases: everything was appended.
    assert_eq!(f.stats().block_erases, 0);
}

#[test]
fn plan_ladder_costs_strictly_improve() {
    let f = Flash::new(FlashGeometry::new(512, 16, 4096));
    let ram = RamBudget::new(64 * 1024);
    let mut db = Database::new(&f, &ram);
    db.create_table(
        "CUSTOMER",
        Schema::new(&[("id", ColumnType::U64), ("city", ColumnType::Str)]),
    )
    .unwrap();
    for i in 0..20_000u64 {
        db.insert(
            "CUSTOMER",
            vec![Value::U64(i), Value::Str(format!("city{}", i % 500))],
        )
        .unwrap();
    }
    let pred = Predicate::eq("city", Value::str("city123"));
    let mut costs = Vec::new();
    for step in 0..3 {
        match step {
            0 => {}
            1 => db.create_index("CUSTOMER", "city").unwrap(),
            _ => db.reorganize_index("CUSTOMER", "city").unwrap(),
        }
        let plan = db.explain("CUSTOMER", &pred).unwrap();
        f.reset_stats();
        let rows = db.select("CUSTOMER", &pred).unwrap();
        let reads = f.stats().page_reads;
        assert_eq!(rows.len(), 40);
        costs.push((plan, reads));
    }
    assert_eq!(costs[0].0, QueryPlan::FullScan);
    assert_eq!(costs[1].0, QueryPlan::SummaryScan);
    assert_eq!(costs[2].0, QueryPlan::TreeLookup);
    assert!(
        costs[0].1 > costs[1].1 && costs[1].1 > costs[2].1,
        "the ladder must strictly improve: {costs:?}"
    );
}

#[test]
fn tpcd_spj_fast_plan_beats_naive_by_an_order_of_magnitude() {
    let f = Flash::new(FlashGeometry::new(512, 16, 8192));
    let ram = RamBudget::new(128 * 1024);
    let mut rng = StdRng::seed_from_u64(1);
    let data = TpcdData::generate(&f, &TpcdConfig::scale(4), &mut rng).unwrap();
    let tree = data.schema_tree().unwrap();
    let tables = data.tables();
    let tjoin = TjoinIndex::build(&f, &tree, &tables).unwrap();
    let seg = TselectIndex::build(&f, &ram, &tree, &tables, "CUSTOMER", "mktsegment").unwrap();
    let sup = TselectIndex::build(&f, &ram, &tree, &tables, "SUPPLIER", "name").unwrap();

    f.reset_stats();
    let fast = execute_spj(
        &tree,
        &tables,
        &tjoin,
        &[
            (&seg, Value::str("HOUSEHOLD")),
            (&sup, Value::str("SUPPLIER-1")),
        ],
    )
    .unwrap();
    let fast_reads = f.stats().page_reads;

    f.reset_stats();
    let cust = tree.table_index("CUSTOMER").unwrap();
    let supp = tree.table_index("SUPPLIER").unwrap();
    let naive = execute_spj_naive(
        &tree,
        &tables,
        &[
            (cust, 3, Value::str("HOUSEHOLD")),
            (supp, 1, Value::str("SUPPLIER-1")),
        ],
    )
    .unwrap();
    let naive_reads = f.stats().page_reads;

    assert_eq!(fast, naive);
    assert!(
        fast_reads * 5 < naive_reads,
        "climbing indexes {fast_reads} IOs vs naive {naive_reads} IOs"
    );
}

/// The embedded search engine equals the unconstrained oracle on
/// arbitrary corpora and queries.
#[test]
fn prop_search_engine_equals_oracle() {
    for case in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0xE50C + case);
        let docs: Vec<Vec<u8>> = (0..rng.gen_range(1usize..60))
            .map(|_| {
                (0..rng.gen_range(1usize..12))
                    .map(|_| rng.gen_range(0u8..12))
                    .collect()
            })
            .collect();
        let query: Vec<u8> = (0..rng.gen_range(1usize..3))
            .map(|_| rng.gen_range(0u8..12))
            .collect();
        let n = rng.gen_range(1usize..8);
        let f = Flash::new(FlashGeometry::new(512, 16, 1024));
        let ram = RamBudget::new(64 * 1024);
        let mut engine = SearchEngine::new(&f, &ram, 8, 16, DfStrategy::TwoPass).unwrap();
        let mut oracle = NaiveSearch::new();
        for d in &docs {
            let text: Vec<String> = d.iter().map(|w| format!("word{w}")).collect();
            let text = text.join(" ");
            engine.index_document(&text).unwrap();
            oracle.index(&text);
        }
        let kw: Vec<String> = query.iter().map(|w| format!("word{w}")).collect();
        let kw_refs: Vec<&str> = kw.iter().map(String::as_str).collect();
        let hits = engine.search(&kw_refs, n).unwrap();
        let expected = oracle.search(&kw_refs, n);
        assert_eq!(
            hits.iter().map(|h| h.doc).collect::<Vec<_>>(),
            expected.iter().map(|h| h.doc).collect::<Vec<_>>(),
            "case {case}"
        );
    }
}

/// Selection answers are identical across the three access methods
/// for arbitrary data distributions.
#[test]
fn prop_plan_ladder_equivalence() {
    for case in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0x1ADDE0 + case);
        let cities: Vec<u16> = (0..rng.gen_range(10usize..300))
            .map(|_| rng.gen_range(0u16..40))
            .collect();
        let probe = rng.gen_range(0u16..40);
        let f = Flash::new(FlashGeometry::new(512, 16, 2048));
        let ram = RamBudget::new(64 * 1024);
        let mut db = Database::new(&f, &ram);
        db.create_table(
            "T",
            Schema::new(&[("day", ColumnType::U64), ("city", ColumnType::Str)]),
        )
        .unwrap();
        for (i, c) in cities.iter().enumerate() {
            db.insert("T", vec![Value::U64(i as u64), Value::Str(format!("c{c}"))])
                .unwrap();
        }
        let pred = Predicate::eq("city", Value::Str(format!("c{probe}")));
        let scan = db.select("T", &pred).unwrap();
        db.create_index("T", "city").unwrap();
        let summary = db.select("T", &pred).unwrap();
        db.reorganize_index("T", "city").unwrap();
        let tree = db.select("T", &pred).unwrap();
        assert_eq!(&scan, &summary, "case {case}");
        assert_eq!(&scan, &tree, "case {case}");
    }
}

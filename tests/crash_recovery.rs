//! Crash recovery end to end: power loss mid-ingestion, reboot, recover.
//!
//! The fault-injection layer of `pds-flash` cuts the power after a
//! seed-chosen number of page programs while a PDS is ingesting across
//! all three collections. [`Pds::reopen`] must then bring the token back
//! with every durably-flushed record intact, derived structures rebuilt,
//! and the losses reported honestly — never surfacing later as
//! corruption.

use pds::core::{AccessContext, Pds, Purpose};
use pds::db::{Predicate, Value};
use pds::flash::FaultPlan;
use pds_obs::rng::{Rng, SeedableRng, StdRng};

/// Ingest one synthetic day of personal data. Returns Err at the cut.
fn ingest_day(pds: &mut Pds, day: u64) -> Result<(), pds::core::PdsError> {
    pds.ingest_email(
        day,
        "dr.martin",
        &format!("subject day {day}"),
        &format!("results for day {day} marker m{}", day % 7),
    )?;
    pds.ingest_health(day, "blood-pressure", 110 + day % 30, "routine check")?;
    pds.ingest_bank(day, "groceries", 1_000 + day * 3, "shop-1")?;
    Ok(())
}

#[test]
fn power_loss_mid_ingest_is_survivable() {
    for case in 0..6u64 {
        let seed = 0x9D5_C4A5 + case;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pds = Pds::for_tests(1, "alice").unwrap();
        let me = AccessContext::new("alice", Purpose::PersonalUse);

        // A durable prefix the crash must never touch.
        for day in 0..10 {
            ingest_day(&mut pds, day).unwrap();
        }
        pds.sync().unwrap();
        let durable_rows = 10u64;

        // Cut the power somewhere in the next burst of ingestion.
        let cut_after = rng.gen_range(1u64..60);
        pds.token()
            .flash()
            .inject_faults(FaultPlan::new(seed).power_loss_after(cut_after));
        let mut attempted = 10u64;
        let crashed = loop {
            if attempted == 200 {
                break false;
            }
            match ingest_day(&mut pds, attempted) {
                Ok(()) => attempted += 1,
                Err(_) => break true,
            }
        };
        assert!(crashed, "case {case}: cut never fired");

        let (mut rec, report) = pds.reopen().unwrap();
        assert!(
            report.docs_recovered as u64 >= 2 * durable_rows,
            "case {case}: lost durable documents ({report:?})"
        );
        for (table, _) in &report.rows_lost {
            let rows = rec
                .select(&me, table, &Predicate::eq("day", Value::U64(5)))
                .unwrap();
            assert_eq!(rows.len(), 1, "case {case}: durable day-5 row in {table}");
        }

        // The rebuilt inverted index answers queries over the survivors.
        let hits = rec.search(&me, &["marker"], 20).unwrap();
        assert!(
            hits.len() >= durable_rows as usize,
            "case {case}: search lost durable docs"
        );

        // And the recovered PDS keeps working: ingest more, search again.
        for day in 200..205 {
            ingest_day(&mut rec, day).unwrap();
        }
        let hits = rec.search(&me, &["marker"], 40).unwrap();
        assert!(hits.len() >= durable_rows as usize + 5, "case {case}");

        // The recovery counters the report tooling exports are live.
        assert!(
            pds_obs::counter("flash.faults_injected").get() > 0,
            "case {case}"
        );
        assert!(
            pds_obs::counter("recovery.pages_scanned").get() > 0,
            "case {case}"
        );
        assert!(
            pds_obs::counter("recovery.records_recovered").get() > 0,
            "case {case}"
        );
    }
}

#[test]
fn clean_reboot_loses_nothing() {
    let mut pds = Pds::for_tests(7, "bob").unwrap();
    let me = AccessContext::new("bob", Purpose::PersonalUse);
    for day in 0..40 {
        ingest_day(&mut pds, day).unwrap();
    }
    pds.sync().unwrap();
    let before = pds.search(&me, &["marker"], 50).unwrap();

    let (mut rec, report) = pds.reopen().unwrap();
    assert_eq!(report.docs_lost, 0);
    assert!(report.rows_lost.iter().all(|(_, lost)| *lost == 0));
    let after = rec.search(&me, &["marker"], 50).unwrap();
    assert_eq!(
        after.iter().map(|h| h.doc).collect::<Vec<_>>(),
        before.iter().map(|h| h.doc).collect::<Vec<_>>(),
    );
}

#[test]
fn hibernation_round_trip_loses_nothing() {
    // The fleet scheduler's eviction path: park a synced token as a
    // sparse flash snapshot plus recovery manifests, then wake it and
    // get the same PDS back — data, policies, audit chain and keys.
    let mut pds = Pds::for_tests(9, "carol").unwrap();
    let me = AccessContext::new("carol", Purpose::PersonalUse);
    for day in 0..25 {
        ingest_day(&mut pds, day).unwrap();
    }
    let before_hits = pds.search(&me, &["marker"], 40).unwrap();
    let before_rows = pds
        .select(
            &me,
            "BANK",
            &Predicate::eq("category", Value::str("groceries")),
        )
        .unwrap();
    let before_audit = pds.audit().entries().len();

    let parked = pds.hibernate().unwrap();
    // The parked state is a fraction of a live PDS, but not empty: the
    // sparse snapshot only carries programmed blocks.
    assert!(parked.resident_bytes() > 0);
    assert_eq!(parked.id().0, 9);

    let (mut woken, report) = Pds::wake(parked).unwrap();
    assert_eq!(report.docs_lost, 0, "hibernate syncs first");
    assert!(report.rows_lost.iter().all(|(_, lost)| *lost == 0));
    assert_eq!(woken.owner(), "carol");
    let after_hits = woken.search(&me, &["marker"], 40).unwrap();
    assert_eq!(
        after_hits.iter().map(|h| h.doc).collect::<Vec<_>>(),
        before_hits.iter().map(|h| h.doc).collect::<Vec<_>>(),
    );
    let after_rows = woken
        .select(
            &me,
            "BANK",
            &Predicate::eq("category", Value::str("groceries")),
        )
        .unwrap();
    assert_eq!(after_rows.len(), before_rows.len());
    // The audit trail survived the park (plus the accesses just made).
    assert!(woken.audit().entries().len() >= before_audit);
    assert!(woken.audit().verify());

    // And the woken token keeps working: ingest + search again.
    ingest_day(&mut woken, 99).unwrap();
    assert!(woken.search(&me, &["marker"], 60).unwrap().len() >= after_hits.len());
}

//! Crash recovery end to end: power loss mid-ingestion, reboot, recover.
//!
//! The fault-injection layer of `pds-flash` cuts the power after a
//! seed-chosen number of page programs while a PDS is ingesting across
//! all three collections. [`Pds::reopen`] must then bring the token back
//! with every durably-flushed record intact, derived structures rebuilt,
//! and the losses reported honestly — never surfacing later as
//! corruption.

use pds::core::{AccessContext, Pds, Purpose};
use pds::db::mvcc::kind;
use pds::db::{Hlc, Predicate, Value, DOC_STORE};
use pds::flash::FaultPlan;
use pds_obs::rng::{Rng, SeedableRng, StdRng};

/// Ingest one synthetic day of personal data. Returns Err at the cut.
fn ingest_day(pds: &mut Pds, day: u64) -> Result<(), pds::core::PdsError> {
    pds.ingest_email(
        day,
        "dr.martin",
        &format!("subject day {day}"),
        &format!("results for day {day} marker m{}", day % 7),
    )?;
    pds.ingest_health(day, "blood-pressure", 110 + day % 30, "routine check")?;
    pds.ingest_bank(day, "groceries", 1_000 + day * 3, "shop-1")?;
    Ok(())
}

#[test]
fn power_loss_mid_ingest_is_survivable() {
    for case in 0..6u64 {
        let seed = 0x9D5_C4A5 + case;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pds = Pds::for_tests(1, "alice").unwrap();
        let me = AccessContext::new("alice", Purpose::PersonalUse);

        // A durable prefix the crash must never touch.
        for day in 0..10 {
            ingest_day(&mut pds, day).unwrap();
        }
        pds.sync().unwrap();
        let durable_rows = 10u64;

        // Cut the power somewhere in the next burst of ingestion.
        let cut_after = rng.gen_range(1u64..60);
        pds.token()
            .flash()
            .inject_faults(FaultPlan::new(seed).power_loss_after(cut_after));
        let mut attempted = 10u64;
        let crashed = loop {
            if attempted == 200 {
                break false;
            }
            match ingest_day(&mut pds, attempted) {
                Ok(()) => attempted += 1,
                Err(_) => break true,
            }
        };
        assert!(crashed, "case {case}: cut never fired");

        let (mut rec, report) = pds.reopen().unwrap();
        assert!(
            report.docs_recovered as u64 >= 2 * durable_rows,
            "case {case}: lost durable documents ({report:?})"
        );
        for (table, _) in &report.rows_lost {
            let rows = rec
                .select(&me, table, &Predicate::eq("day", Value::U64(5)))
                .unwrap();
            assert_eq!(rows.len(), 1, "case {case}: durable day-5 row in {table}");
        }

        // The rebuilt inverted index answers queries over the survivors.
        let hits = rec.search(&me, &["marker"], 20).unwrap();
        assert!(
            hits.len() >= durable_rows as usize,
            "case {case}: search lost durable docs"
        );

        // And the recovered PDS keeps working: ingest more, search again.
        for day in 200..205 {
            ingest_day(&mut rec, day).unwrap();
        }
        let hits = rec.search(&me, &["marker"], 40).unwrap();
        assert!(hits.len() >= durable_rows as usize + 5, "case {case}");

        // The recovery counters the report tooling exports are live.
        assert!(
            pds_obs::counter("flash.faults_injected").get() > 0,
            "case {case}"
        );
        assert!(
            pds_obs::counter("recovery.pages_scanned").get() > 0,
            "case {case}"
        );
        assert!(
            pds_obs::counter("recovery.records_recovered").get() > 0,
            "case {case}"
        );
    }
}

#[test]
fn power_loss_over_the_change_log_keeps_the_causal_prefix() {
    // Store ids follow `Pds::with_token`'s create order: EMAIL=0,
    // HEALTH=1, BANK=2; the document store is `DOC_STORE`.
    const TABLES: [&str; 3] = ["EMAIL", "HEALTH", "BANK"];
    const BANK_STORE: u16 = 2;
    let all_days = Predicate::between("day", Value::U64(0), Value::U64(1_000_000));

    for case in 0..6u64 {
        let seed = 0xC1A_0E18 + case;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pds = Pds::for_tests(2, "erin").unwrap();
        let me = AccessContext::new("erin", Purpose::PersonalUse);

        // A standing subscription registered before any data exists, and
        // a durable, committed prefix the crash must never touch.
        let sub = pds
            .subscribe("BANK", Predicate::eq("category", Value::str("groceries")))
            .unwrap();
        for day in 0..8 {
            ingest_day(&mut pds, day).unwrap();
            pds.commit().unwrap();
        }
        pds.sync().unwrap();
        let pre_crash = pds.changes_since(Hlc::ZERO).unwrap();
        assert!(!pre_crash.is_empty(), "case {case}: empty durable log");

        // Drain the subscription up to the durable frontier: everything
        // delivered from here on must be a post-sync commit.
        let delivered_pre = pds.poll_subscription(sub).unwrap().len();
        let bank_pre = pre_crash
            .iter()
            .filter(|r| r.kind == kind::ROW_INSERT && r.store == BANK_STORE)
            .count();
        assert_eq!(delivered_pre, bank_pre, "case {case}: prefix delivery");

        // Cut the power while further days are ingested, committed and
        // flushed — the change log itself is in the fault window.
        let cut_after = rng.gen_range(1u64..60);
        pds.token()
            .flash()
            .inject_faults(FaultPlan::new(seed).power_loss_after(cut_after));
        let mut day = 8u64;
        let crashed = loop {
            if day == 200 {
                break false;
            }
            let r = ingest_day(&mut pds, day)
                .and_then(|()| pds.commit().map(|_| ()))
                .and_then(|()| pds.sync());
            match r {
                Ok(()) => day += 1,
                Err(_) => break true,
            }
        };
        assert!(crashed, "case {case}: cut never fired");

        let (mut rec, report) = pds.reopen().unwrap();
        let recs = rec.changes_since(Hlc::ZERO).unwrap();

        // 1. The torn tail truncates to the durable prefix: every
        //    pre-sync record survives, verbatim and in order.
        assert!(recs.len() >= pre_crash.len(), "case {case}: prefix lost");
        assert_eq!(
            &recs[..pre_crash.len()],
            &pre_crash[..],
            "case {case}: durable log prefix rewritten"
        );

        // 2. Stamps stay non-decreasing across the recovery boundary —
        //    including any synthetic restamp of durable-but-unstamped rows.
        assert!(
            recs.windows(2)
                .all(|w| (w[0].hlc, w[0].node) <= (w[1].hlc, w[1].node)),
            "case {case}: recovered log is not causally ordered"
        );

        // 3. No phantom: `changes_since` never names an entity the
        //    recovered stores cannot serve.
        for (store, table) in TABLES.iter().enumerate() {
            let rows = rec.select(&me, table, &all_days).unwrap().len() as u32;
            for r in recs.iter().filter(|r| r.store == store as u16) {
                assert!(
                    r.entity < rows,
                    "case {case}: {table} change names phantom row {} (have {rows})",
                    r.entity
                );
            }
        }
        for r in recs.iter().filter(|r| r.store == DOC_STORE) {
            assert!(
                r.entity < report.docs_recovered,
                "case {case}: change log names phantom doc {} (have {})",
                r.entity,
                report.docs_recovered
            );
        }

        // 4. The pre-crash subscription delivers each surviving commit
        //    exactly once: prefix + post-recovery deliveries add up to
        //    the recovered log's BANK inserts, and a re-poll is empty.
        let delivered_post = rec.poll_subscription(sub).unwrap().len();
        let bank_total = recs
            .iter()
            .filter(|r| r.kind == kind::ROW_INSERT && r.store == BANK_STORE)
            .count();
        assert_eq!(
            delivered_pre + delivered_post,
            bank_total,
            "case {case}: subscription missed or re-delivered a commit"
        );
        assert!(
            rec.poll_subscription(sub).unwrap().is_empty(),
            "case {case}: drained subscription re-delivered"
        );

        // 5. The recovered token keeps streaming: one more committed day
        //    yields exactly one more BANK delivery.
        ingest_day(&mut rec, 300).unwrap();
        rec.commit().unwrap();
        assert_eq!(
            rec.poll_subscription(sub).unwrap().len(),
            1,
            "case {case}: post-recovery commit not delivered"
        );

        // The change-log recovery counters the report tooling exports
        // are live.
        assert!(
            pds_obs::counter("recovery.changes_recovered").get() > 0,
            "case {case}"
        );
        assert!(
            pds_obs::counter("mvcc.changes_logged").get() > 0,
            "case {case}"
        );
    }
}

#[test]
fn clean_reboot_loses_nothing() {
    let mut pds = Pds::for_tests(7, "bob").unwrap();
    let me = AccessContext::new("bob", Purpose::PersonalUse);
    for day in 0..40 {
        ingest_day(&mut pds, day).unwrap();
    }
    pds.sync().unwrap();
    let before = pds.search(&me, &["marker"], 50).unwrap();

    let (mut rec, report) = pds.reopen().unwrap();
    assert_eq!(report.docs_lost, 0);
    assert!(report.rows_lost.iter().all(|(_, lost)| *lost == 0));
    let after = rec.search(&me, &["marker"], 50).unwrap();
    assert_eq!(
        after.iter().map(|h| h.doc).collect::<Vec<_>>(),
        before.iter().map(|h| h.doc).collect::<Vec<_>>(),
    );
}

#[test]
fn hibernation_round_trip_loses_nothing() {
    // The fleet scheduler's eviction path: park a synced token as a
    // sparse flash snapshot plus recovery manifests, then wake it and
    // get the same PDS back — data, policies, audit chain and keys.
    let mut pds = Pds::for_tests(9, "carol").unwrap();
    let me = AccessContext::new("carol", Purpose::PersonalUse);
    for day in 0..25 {
        ingest_day(&mut pds, day).unwrap();
    }
    let before_hits = pds.search(&me, &["marker"], 40).unwrap();
    let before_rows = pds
        .select(
            &me,
            "BANK",
            &Predicate::eq("category", Value::str("groceries")),
        )
        .unwrap();
    let before_audit = pds.audit().entries().len();

    let parked = pds.hibernate().unwrap();
    // The parked state is a fraction of a live PDS, but not empty: the
    // sparse snapshot only carries programmed blocks.
    assert!(parked.resident_bytes() > 0);
    assert_eq!(parked.id().0, 9);

    let (mut woken, report) = Pds::wake(parked).unwrap();
    assert_eq!(report.docs_lost, 0, "hibernate syncs first");
    assert!(report.rows_lost.iter().all(|(_, lost)| *lost == 0));
    assert_eq!(woken.owner(), "carol");
    let after_hits = woken.search(&me, &["marker"], 40).unwrap();
    assert_eq!(
        after_hits.iter().map(|h| h.doc).collect::<Vec<_>>(),
        before_hits.iter().map(|h| h.doc).collect::<Vec<_>>(),
    );
    let after_rows = woken
        .select(
            &me,
            "BANK",
            &Predicate::eq("category", Value::str("groceries")),
        )
        .unwrap();
    assert_eq!(after_rows.len(), before_rows.len());
    // The audit trail survived the park (plus the accesses just made).
    assert!(woken.audit().entries().len() >= before_audit);
    assert!(woken.audit().verify());

    // And the woken token keeps working: ingest + search again.
    ingest_day(&mut woken, 99).unwrap();
    assert!(woken.search(&me, &["marker"], 60).unwrap().len() >= after_hits.len());
}

#[test]
fn power_loss_over_the_flight_recorder_keeps_the_durable_timeline() {
    use pds::obs::flight::code;

    for case in 0..6u64 {
        let seed = 0xB1AC_B0C5 + case;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pds = Pds::for_tests(4, "gene").unwrap();

        // A durable timeline prefix: committed rounds, then a sync that
        // flushes the recorder ring. Everything in the RAM mirror is on
        // flash after this point.
        for day in 0..8 {
            ingest_day(&mut pds, day).unwrap();
            pds.commit().unwrap();
        }
        pds.sync().unwrap();
        let durable = pds.blackbox().frames().to_vec();
        assert!(!durable.is_empty(), "case {case}: empty durable timeline");
        assert!(pds.forensics().is_none(), "case {case}: never reopened");

        // Cut the power while further rounds run — recorder pages are in
        // the same fault window as data and changelog pages.
        let cut_after = rng.gen_range(1u64..60);
        pds.token()
            .flash()
            .inject_faults(FaultPlan::new(seed).power_loss_after(cut_after));
        let mut day = 8u64;
        let crashed = loop {
            if day == 200 {
                break false;
            }
            let r = ingest_day(&mut pds, day)
                .and_then(|()| pds.commit().map(|_| ()))
                .and_then(|()| pds.sync());
            match r {
                Ok(()) => day += 1,
                Err(_) => break true,
            }
        };
        assert!(crashed, "case {case}: cut never fired");
        let last_attempted = day;

        let (rec, _report) = pds.reopen().unwrap();
        let f = rec.forensics().expect("forensics after reopen");

        // 1. The durable prefix is recovered verbatim — same frames,
        //    same order, bit for bit.
        assert!(
            f.timeline.len() >= durable.len(),
            "case {case}: durable timeline prefix lost"
        );
        assert_eq!(
            &f.timeline[..durable.len()],
            &durable[..],
            "case {case}: durable timeline prefix rewritten"
        );

        // 2. The torn tail is dropped at a frame boundary: ticks stay
        //    strictly monotone across the whole recovered timeline.
        assert!(
            f.timeline.windows(2).all(|w| w[0].tick < w[1].tick),
            "case {case}: recovered timeline is not strictly monotone"
        );
        assert_eq!(
            f.frames_recovered,
            f.timeline.len() as u64,
            "case {case}: scan and timeline disagree"
        );
        assert_eq!(
            f.crash_tick(),
            f.timeline.last().unwrap().tick,
            "case {case}: crash tick is not the last durable frame"
        );

        // 3. No phantom events: post-prefix frames name only rounds the
        //    crashed run actually staged, and the pre-crash timeline
        //    cannot contain recovery events.
        for fr in &f.timeline[durable.len()..] {
            if fr.code == code::CORE_INGEST {
                assert!(
                    (8..=last_attempted).contains(&fr.args[1]),
                    "case {case}: phantom ingest day {} in timeline",
                    fr.args[1]
                );
            }
            assert_ne!(
                fr.code,
                code::RECOVERY_REOPEN,
                "case {case}: pre-crash timeline contains a recovery event"
            );
        }

        // 4. The recovered ring keeps stamping past the crash: the
        //    reopen itself is now the newest frame.
        let post = rec.blackbox().frames();
        let reopened = post.last().unwrap();
        assert_eq!(reopened.code, code::RECOVERY_REOPEN, "case {case}");
        assert!(reopened.tick > f.crash_tick(), "case {case}");
        assert!(
            pds_obs::counter("blackbox.frames_recovered").get() > 0,
            "case {case}: recovery counters dead"
        );
    }
}

#[test]
fn a_crash_digest_is_folded_exactly_once_across_a_power_cycle_mid_mail() {
    use pds::fleet::{
        mail_forensics, BusConfig, Collector, HealthEngine, MailboxBus, TelemetryConfig,
    };

    for case in 0..4u64 {
        let seed = 0xD16_E57 + case;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pds = Pds::for_tests(5, "hana").unwrap();
        for day in 0..6 {
            ingest_day(&mut pds, day).unwrap();
            pds.commit().unwrap();
        }
        pds.sync().unwrap();
        let cut_after = rng.gen_range(1u64..60);
        pds.token()
            .flash()
            .inject_faults(FaultPlan::new(seed).power_loss_after(cut_after));
        let mut day = 6u64;
        loop {
            assert!(day < 200, "case {case}: cut never fired");
            let r = ingest_day(&mut pds, day)
                .and_then(|()| pds.commit().map(|_| ()))
                .and_then(|()| pds.sync());
            if r.is_err() {
                break;
            }
            day += 1;
        }
        let (rec, _) = pds.reopen().unwrap();

        // Mail the digest over a duplicating bus, then lose power again
        // *before the token learns whether it landed*: nothing new was
        // synced, so the second recovery replays the same durable ring
        // and re-derives the same crash tick. The token re-mails.
        let mut bus = MailboxBus::new(BusConfig {
            dup_rate: 0.3,
            ..BusConfig::reliable(seed)
        });
        let mut collector = Collector::new(TelemetryConfig::default());
        assert!(mail_forensics(&rec, 0, &mut bus), "case {case}: first mail");
        let (rec2, _) = rec.reopen().unwrap();
        assert!(mail_forensics(&rec2, 0, &mut bus), "case {case}: re-mail");
        bus.run_until_quiet(100_000);
        collector.drain_bus(&mut bus);

        // Exactly once: one crash folded, the re-mail (and any bus
        // duplicate) dropped by the (token, crash_tick) gate.
        let stats = collector.stats();
        assert_eq!(
            stats.digests_folded, 1,
            "case {case}: crash not exactly-once"
        );
        assert!(
            stats.digests_deduped >= 1,
            "case {case}: re-mail not deduped"
        );
        assert_eq!(stats.decode_errors, 0, "case {case}");
        assert_eq!(
            collector.total().counter("forensics.crashes"),
            1,
            "case {case}: crash counted twice"
        );
        assert!(
            collector.crash_summary().contains("1 token(s) crashed"),
            "case {case}: triage line wrong: {}",
            collector.crash_summary()
        );
        let health = collector.health(&HealthEngine::standard());
        assert!(
            health
                .verdicts
                .iter()
                .any(|v| v.rule == "forensics.crashes == 0" && !v.pass),
            "case {case}: the storm is invisible to fleet status"
        );
    }
}

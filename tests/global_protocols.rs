//! Integration: the [TNP14] protocol family against the plaintext
//! ground truth, under both threat models, across population sizes.

use pds::global::histogram::{histogram_based, BucketMap};
use pds::global::noise::{noise_based, NoiseStrategy};
use pds::global::secure_agg::{secure_aggregation, OnTamper};
use pds::global::{plaintext_groupby, GroupByQuery, Population, Ssi, SsiThreat};
use pds_obs::rng::SeedableRng;
use pds_obs::rng::StdRng;

fn setup(n: usize, seed: u64) -> (Population, GroupByQuery, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let q = GroupByQuery::bank_by_category();
    let pop = Population::synthetic(n, &q.domain, &mut rng).unwrap();
    (pop, q, rng)
}

#[test]
fn all_protocols_agree_with_ground_truth_across_sizes() {
    for (n, seed) in [(10usize, 1u64), (60, 2), (150, 3)] {
        let (mut pop, q, mut rng) = setup(n, seed);
        let truth = plaintext_groupby(&mut pop, &q).unwrap();

        let ssi = Ssi::honest(seed);
        let (r, _) = secure_aggregation(&mut pop, &q, &ssi, 16, OnTamper::Abort, &mut rng).unwrap();
        assert_eq!(r, truth, "secure-agg n={n}");

        for strategy in [
            NoiseStrategy::Random { fakes_per_token: 0 },
            NoiseStrategy::Random { fakes_per_token: 5 },
            NoiseStrategy::Complementary,
        ] {
            let ssi = Ssi::honest(seed + 10);
            let (r, _) = noise_based(&mut pop, &q, &ssi, strategy, &mut rng).unwrap();
            assert_eq!(r, truth, "noise {strategy:?} n={n}");
        }

        for buckets in [1u32, 2, 6] {
            let map = BucketMap::equi_width(&q.domain, buckets);
            let ssi = Ssi::honest(seed + 20);
            let (r, _) = histogram_based(&mut pop, &q, &ssi, &map, &mut rng).unwrap();
            assert_eq!(r, truth, "histogram B={buckets} n={n}");
        }
    }
}

#[test]
fn leakage_ordering_matches_the_paper() {
    // secure-agg < histogram < noise-free-det in terms of what the SSI
    // can reconstruct of the group frequency distribution.
    let (mut pop, q, mut rng) = setup(200, 5);

    let agg_ssi = Ssi::honest(1);
    secure_aggregation(&mut pop, &q, &agg_ssi, 16, OnTamper::Abort, &mut rng).unwrap();
    let agg_classes = agg_ssi.leakage().equality_class_sizes.len();

    let map = BucketMap::equi_width(&q.domain, 2);
    let hist_ssi = Ssi::honest(2);
    histogram_based(&mut pop, &q, &hist_ssi, &map, &mut rng).unwrap();
    let hist_classes = hist_ssi.leakage().equality_class_sizes.len();

    let det_ssi = Ssi::honest(3);
    noise_based(
        &mut pop,
        &q,
        &det_ssi,
        NoiseStrategy::Random { fakes_per_token: 0 },
        &mut rng,
    )
    .unwrap();
    let det_classes = det_ssi.leakage().equality_class_sizes.len();

    assert_eq!(agg_classes, 0, "probabilistic encryption: no classes");
    assert!(hist_classes > agg_classes);
    assert!(det_classes >= hist_classes, "full det grouping is finest");
}

#[test]
fn weakly_malicious_ssi_is_caught_by_checking_tokens() {
    let (mut pop, q, mut rng) = setup(50, 6);
    let ssi = Ssi::new(
        SsiThreat::WeaklyMalicious {
            drop_rate: 0.0,
            forge_rate: 0.3,
        },
        1,
    );
    let err = secure_aggregation(&mut pop, &q, &ssi, 16, OnTamper::Abort, &mut rng).unwrap_err();
    assert!(matches!(
        err,
        pds::global::GlobalError::TamperingDetected(_)
    ));
}

#[test]
fn token_work_scales_linearly_with_population() {
    let mut work = Vec::new();
    for n in [50usize, 200] {
        let (mut pop, q, mut rng) = setup(n, 8);
        let ssi = Ssi::honest(1);
        let (_, stats) =
            secure_aggregation(&mut pop, &q, &ssi, 16, OnTamper::Abort, &mut rng).unwrap();
        work.push(stats.token_tuples as f64);
    }
    let ratio = work[1] / work[0];
    assert!(
        ratio > 2.0 && ratio < 8.0,
        "4× population ⇒ ≈4× token work, ratio {ratio}"
    );
}

#[test]
fn toolkit_and_protocols_compose_on_the_same_population() {
    // The toolkit's secure sum over per-token totals must equal the
    // protocols' grand total.
    let (mut pop, q, mut rng) = setup(40, 9);
    let truth = plaintext_groupby(&mut pop, &q).unwrap();
    let grand_total: u64 = truth.iter().map(|(_, v)| v).sum();
    let per_token: Vec<u64> = {
        let contribs = pop.contributions(&q).unwrap();
        let mut sums = vec![0u64; pop.len()];
        for (i, _, v) in contribs {
            sums[i] += v;
        }
        sums
    };
    let modulus = 1u64 << 40;
    let (secure_total, _) = pds::global::toolkit::secure_sum(&per_token, modulus, &mut rng);
    assert_eq!(secure_total, grand_total % modulus);
}

//! Integration: the fleet runtime's determinism contract and the
//! bus-routed Trusted-Cells convergence.
//!
//! The contract under test: for a fixed seed, a phased fleet job is
//! bit-for-bit identical at 1, 2, and 8 worker threads — the protocol
//! result, the SSI's leakage ledger, its covert drop/forge tallies, the
//! protocol cost accounting, and the bus delivery counters. And the
//! store-and-forward bus gives the Trusted-Cells sync the paper's
//! availability story: a cell that disappears mid-sync converges as
//! soon as it comes back online.

use pds::fleet::{
    build_fleet, fleet_secure_aggregation, CellNet, CellNetConfig, FleetAggReport, FleetConfig,
    OnTamper,
};
use pds::global::ssi::SsiThreat;
use pds::global::GroupByQuery;
use pds::sync::TrustedCell;

fn run_fleet(workers: usize, threat: SsiThreat, on_tamper: OnTamper) -> FleetAggReport {
    let mut cfg = FleetConfig::new(64, workers, 0xF1EE7);
    cfg.partition_size = 16;
    let query = GroupByQuery::bank_by_category();
    let mut fleet = build_fleet(&cfg, &query).unwrap();
    fleet_secure_aggregation(&cfg, &query, &mut fleet, threat, on_tamper).unwrap()
}

#[test]
fn aggregation_is_identical_at_1_2_and_8_workers() {
    let one = run_fleet(1, SsiThreat::HonestButCurious, OnTamper::Abort);
    assert_eq!(one.result, one.expected, "protocol is exact");
    assert!(!one.result.is_empty());
    for workers in [2, 8] {
        let many = run_fleet(workers, SsiThreat::HonestButCurious, OnTamper::Abort);
        assert_eq!(one.result, many.result, "{workers} workers: result");
        assert_eq!(
            one.leakage, many.leakage,
            "{workers} workers: leakage ledger"
        );
        assert_eq!(one.stats, many.stats, "{workers} workers: protocol stats");
        assert_eq!(
            one.bus, many.bus,
            "{workers} workers: bus delivery schedule"
        );
        assert_eq!(one.result_coverage, many.result_coverage);
    }
}

#[test]
fn stitched_trace_is_bit_identical_at_1_2_and_8_workers() {
    let run = |workers: usize| {
        let mut cfg = FleetConfig::new(32, workers, 0x7ACE);
        cfg.partition_size = 8;
        cfg.trace = true;
        let query = GroupByQuery::bank_by_category();
        let mut fleet = build_fleet(&cfg, &query).unwrap();
        let rep = fleet_secure_aggregation(
            &cfg,
            &query,
            &mut fleet,
            SsiThreat::HonestButCurious,
            OnTamper::Abort,
        )
        .unwrap();
        rep.trace.expect("trace requested")
    };
    let one = run(1);
    // The rendered report and the JSON line are both byte-exact — the
    // worker count and thread scheduling are unobservable in the trace.
    assert_eq!(one.render(), run(2).render(), "2 workers");
    assert_eq!(one.to_json(), run(8).to_json(), "8 workers");

    // And the trace is meaningful: phased, with a critical path whose
    // straggler hops explain the round's causal length in bus ticks.
    assert!(one.phases().len() >= 3);
    assert_eq!(one.phases()[0].name, "phase.collect");
    let cp = one.critical_path();
    assert_eq!(cp.len(), one.phases().len());
    assert!(cp[0].msg.is_some(), "collection moved messages");
    assert!(one.total_ticks() > 0);
    assert!(
        !one.per_token("mcu.ram.peak_bytes").is_empty(),
        "per-token RAM attribution rode along"
    );
    // Every exported trace line round-trips through the JSON parser.
    let parsed = pds::obs::json::parse(&one.to_json()).expect("trace JSON parses");
    assert_eq!(
        parsed.get("span").and_then(pds::obs::json::Json::as_str),
        Some("fleet.agg")
    );
}

#[test]
fn capped_residency_is_identical_at_1_2_and_8_workers() {
    // The event-driven scheduler's contract: with eviction actually
    // biting (cap 16 of 64 tokens), the run is still bit-identical at
    // any shard count — results, bus schedule, and the scheduler's own
    // accounting (wakes, evictions, rebuilds, peak residency).
    let run = |workers: usize, evict: pds::fleet::EvictPolicy| {
        let mut cfg = FleetConfig::new(64, workers, 0xF1EE7);
        cfg.partition_size = 16;
        cfg.resident_cap = Some(16);
        cfg.evict = evict;
        let query = GroupByQuery::bank_by_category();
        let mut fleet = build_fleet(&cfg, &query).unwrap();
        fleet_secure_aggregation(
            &cfg,
            &query,
            &mut fleet,
            SsiThreat::HonestButCurious,
            OnTamper::Abort,
        )
        .unwrap()
    };
    let uncapped = run_fleet(4, SsiThreat::HonestButCurious, OnTamper::Abort);
    for evict in [
        pds::fleet::EvictPolicy::Hibernate,
        pds::fleet::EvictPolicy::Rebuild,
    ] {
        let one = run(1, evict);
        assert_eq!(one.result, one.expected, "{evict:?}: protocol is exact");
        assert_eq!(
            one.result, uncapped.result,
            "{evict:?}: the cap is unobservable in the protocol result"
        );
        assert!(one.sched.evictions > 0, "{evict:?}: the cap bit");
        assert!(
            one.sched.peak_resident <= 16,
            "{evict:?}: residency bounded, got {}",
            one.sched.peak_resident
        );
        for workers in [2, 8] {
            let many = run(workers, evict);
            assert_eq!(one.result, many.result, "{evict:?} {workers}w: result");
            assert_eq!(one.bus, many.bus, "{evict:?} {workers}w: bus schedule");
            assert_eq!(one.sched, many.sched, "{evict:?} {workers}w: sched stats");
            assert_eq!(
                one.phase_ticks, many.phase_ticks,
                "{evict:?} {workers}w: causal phase ticks"
            );
        }
    }
}

#[test]
fn covert_adversary_verdicts_are_thread_count_independent() {
    // A weakly-malicious SSI decides drops per message id, so even the
    // *damage* it does is reproducible at any worker count.
    let threat = SsiThreat::WeaklyMalicious {
        drop_rate: 0.4,
        forge_rate: 0.0,
    };
    let one = run_fleet(1, threat, OnTamper::Skip);
    let eight = run_fleet(8, threat, OnTamper::Skip);
    assert_eq!(one.result, eight.result, "identical corrupted result");
    assert_eq!(one.leakage, eight.leakage);
    let sum = |r: &[(String, u64)]| r.iter().map(|(_, v)| *v).sum::<u64>();
    assert!(
        sum(&one.result) < sum(&one.expected),
        "drops did bias the unchecked result"
    );
}

#[test]
fn weak_connectivity_changes_schedule_but_not_result() {
    let mut flaky = FleetConfig::new(48, 4, 77);
    flaky.partition_size = 16;
    flaky.bus.connectivity = 0.15;
    flaky.bus.loss_rate = 0.2;
    flaky.bus.dup_rate = 0.1;
    flaky.bus.max_attempts = 64;
    let mut solid = flaky.clone();
    solid.bus.connectivity = 1.0;
    solid.bus.loss_rate = 0.0;
    solid.bus.dup_rate = 0.0;
    let query = GroupByQuery::bank_by_category();
    let run = |cfg: &FleetConfig| {
        let mut fleet = build_fleet(cfg, &query).unwrap();
        fleet_secure_aggregation(
            cfg,
            &query,
            &mut fleet,
            SsiThreat::HonestButCurious,
            OnTamper::Abort,
        )
        .unwrap()
    };
    let a = run(&flaky);
    let b = run(&solid);
    assert_eq!(a.bus.expired, 0, "at-least-once within the attempt budget");
    assert!(a.bus.retries > 0 && a.bus.duplicates > 0);
    assert!(a.bus.ticks > b.bus.ticks, "weak connectivity costs time");
    assert_eq!(a.result, b.result, "…but never correctness");
}

fn cell_net(workers: usize, seed: u64) -> CellNet {
    let cfg = CellNetConfig::new(6, workers, seed);
    CellNet::build(cfg, |i| {
        TrustedCell::new(&format!("cell-{i}"), b"owner-alice")
    })
    .unwrap()
}

#[test]
fn offline_cell_converges_after_coming_back_online() {
    let mut net = cell_net(3, 11);
    net.write(0, "energy-profile", b"heating v1");
    net.sync_until_quiet(40).unwrap();
    assert!(net.converged(), "baseline sync: {:?}", net.versions());

    // Cell 4 drops off the network; the others keep evolving the state.
    net.force_offline(4, true);
    net.write(1, "energy-profile", b"heating v2");
    net.write(1, "medical", b"diagnosis");
    net.sync_until_quiet(40).unwrap();
    assert!(!net.converged(), "cell 4 is behind while offline");
    assert_eq!(net.read(5, "energy-profile").unwrap(), b"heating v2");
    assert_ne!(net.read(4, "energy-profile").unwrap(), b"heating v2");

    // It reconnects: the parked bus traffic and the next sync rounds
    // bring it up to date without anyone re-entering data.
    net.force_offline(4, false);
    net.sync_until_quiet(40).unwrap();
    assert!(net.converged(), "after reconnect: {:?}", net.versions());
    assert_eq!(net.read(4, "energy-profile").unwrap(), b"heating v2");
    assert_eq!(net.read(4, "medical").unwrap(), b"diagnosis");
}

#[test]
fn cell_sync_is_identical_across_worker_counts() {
    let run = |workers| {
        let mut net = cell_net(workers, 23);
        net.write(0, "a", b"1");
        net.write(3, "b", b"2");
        let rounds = net.sync_until_quiet(40).unwrap();
        net.write(2, "a", b"3");
        net.sync_until_quiet(40).unwrap();
        (rounds, net.versions(), net.report(), net.bus_stats())
    };
    let one = run(1);
    assert_eq!(one, run(2));
    assert_eq!(one, run(8));
}

//! MVCC end to end: snapshot isolation through the PDS gateway, version
//! GC, the equal-version conflict gate in the cell protocol, and the two
//! change-log consumers (delta cell sync, continuous queries) running as
//! fleets.

use pds::core::{AccessContext, CloudStore, Pds, Purpose};
use pds::db::{Predicate, Value};
use pds::fleet::{CellNet, CellNetConfig, SubNet, SubNetConfig};
use pds::sync::{serve_cloud, CellMsg, TrustedCell};
use pds_obs::rng::{SeedableRng, StdRng};

/// Ingest one synthetic day across all three collections.
fn ingest_day(pds: &mut Pds, day: u64) -> Result<(), pds::core::PdsError> {
    pds.ingest_email(
        day,
        "dr.martin",
        &format!("subject day {day}"),
        &format!("results for day {day} marker m{}", day % 7),
    )?;
    pds.ingest_health(day, "blood-pressure", 110 + day % 30, "routine check")?;
    pds.ingest_bank(day, "groceries", 1_000 + day * 3, "shop-1")?;
    Ok(())
}

#[test]
fn snapshot_reads_stay_pinned_while_the_live_head_moves() {
    let mut pds = Pds::for_tests(31, "erin").unwrap();
    let me = AccessContext::new("erin", Purpose::PersonalUse);
    let groceries = Predicate::eq("category", Value::str("groceries"));

    for day in 0..5 {
        ingest_day(&mut pds, day).unwrap();
    }
    pds.commit().unwrap();
    let snap = pds.open_snapshot().unwrap();
    let pinned_hits = pds.search_at(&me, &snap, &["marker"], 50).unwrap().len();

    // The head moves on: five more committed days.
    for day in 5..10 {
        ingest_day(&mut pds, day).unwrap();
    }
    pds.commit().unwrap();

    // Live reads see all ten days; the snapshot still sees five.
    assert_eq!(pds.select(&me, "BANK", &groceries).unwrap().len(), 10);
    assert_eq!(
        pds.select_at(&me, &snap, "BANK", &groceries).unwrap().len(),
        5
    );
    assert_eq!(
        pds.search_at(&me, &snap, &["marker"], 50).unwrap().len(),
        pinned_hits
    );
    assert!(pds.search(&me, &["marker"], 50).unwrap().len() > pinned_hits);

    // A document committed after the snapshot answers like one that
    // never existed — while the live read serves it.
    let unseen_doc = 2 * 5; // two docs per day, day five's email is first
    assert!(pds.get_document_at(&me, &snap, unseen_doc).is_err());
    assert!(pds.get_document(&me, unseen_doc).is_ok());

    // Release the pin; GC may now collapse the pinned history.
    pds.release_snapshot(&snap);
    let report = pds.gc_versions().unwrap();
    assert!(report.versions_collapsed > 0, "{report:?}");
    assert_eq!(pds.select(&me, "BANK", &groceries).unwrap().len(), 10);
}

#[test]
fn gc_never_collapses_under_an_open_snapshot() {
    let mut pds = Pds::for_tests(32, "frank").unwrap();
    let me = AccessContext::new("frank", Purpose::PersonalUse);
    let groceries = Predicate::eq("category", Value::str("groceries"));

    ingest_day(&mut pds, 0).unwrap();
    pds.commit().unwrap();
    let snap = pds.open_snapshot().unwrap();
    for day in 1..4 {
        ingest_day(&mut pds, day).unwrap();
        pds.commit().unwrap();
    }

    // The pin holds the floor: the snapshot view survives a GC pass.
    pds.gc_versions().unwrap();
    assert_eq!(
        pds.select_at(&me, &snap, "BANK", &groceries).unwrap().len(),
        1
    );
    pds.release_snapshot(&snap);
}

#[test]
fn equal_version_racing_pushes_keep_the_first_writer() {
    // Two cells of the same owner race a push for the same slice at the
    // same version: the cloud must keep the first arrival and count a
    // conflict, never silently clobber ciphertext.
    let mut rng = StdRng::seed_from_u64(0xE18_C0F);
    let mut home = TrustedCell::new("home", b"erin-owner");
    let mut phone = TrustedCell::new("phone", b"erin-owner");
    let mut cloud = CloudStore::new();
    let mut side = CloudStore::new();

    home.write("prefs", b"dark-mode");
    home.sync(&mut cloud, &mut rng).unwrap();
    let stored = cloud
        .get("cell-slice:prefs")
        .unwrap()
        .first()
        .unwrap()
        .clone();

    // The phone, offline since before the write, produces its own v1
    // blob (captured by syncing it against an empty side store).
    phone.write("prefs", b"light-mode");
    phone.sync(&mut side, &mut rng).unwrap();
    let raced = side
        .get("cell-slice:prefs")
        .unwrap()
        .first()
        .unwrap()
        .clone();
    assert_ne!(stored, raced);

    let conflicts = pds_obs::counter("sync.conflicts").get();
    serve_cloud(
        &mut cloud,
        &CellMsg::Push {
            slice: "prefs".into(),
            blob: raced,
        },
    );
    assert_eq!(pds_obs::counter("sync.conflicts").get(), conflicts + 1);
    assert_eq!(
        cloud.get("cell-slice:prefs").unwrap().first().unwrap(),
        &stored,
        "first writer wins at equal version"
    );

    // A fresh cell pulling from the cloud decrypts the surviving write.
    let mut car = TrustedCell::new("car", b"erin-owner");
    assert!(car.pull_new(&cloud, "prefs").unwrap());
    assert_eq!(car.read("prefs"), Some(&b"dark-mode"[..]));
}

#[test]
fn delta_and_full_cell_fleets_converge_to_the_same_witness() {
    let bytes_sent = pds_obs::counter("sync.bytes_sent").get();
    let bytes_received = pds_obs::counter("sync.bytes_received").get();

    let run = |delta: bool| {
        let cfg = CellNetConfig::new(24, 2, 0xE18);
        let cfg = if delta { cfg.with_delta() } else { cfg };
        let mut n = CellNet::build(cfg, |i| {
            TrustedCell::new(&format!("cell-{i}"), b"owner-mvcc")
        })
        .unwrap();
        n.write(0, "energy", &[0x11; 200]);
        n.write(12, "prefs", &[0x22; 100]);
        n.sync_until_quiet(60).unwrap();
        assert!(n.converged());
        let before = n.bus_stats().payload_bytes;
        n.sync_round().unwrap();
        (n.versions(), n.bus_stats().payload_bytes - before)
    };
    let (full_witness, full_idle) = run(false);
    let (delta_witness, delta_idle) = run(true);

    assert_eq!(full_witness, delta_witness, "reconcile modes diverged");
    assert!(
        delta_idle * 5 <= full_idle,
        "idle round: delta {delta_idle} B vs full {full_idle} B"
    );

    // The wire accounting satellites: every encoded and decoded cell
    // message was metered while the fleets ran.
    assert!(pds_obs::counter("sync.bytes_sent").get() > bytes_sent);
    assert!(pds_obs::counter("sync.bytes_received").get() > bytes_received);
}

#[test]
fn subscription_fleet_stays_exactly_once_across_power_cycles() {
    let mut n = SubNet::build(SubNetConfig::new(6, 0xE18)).unwrap();
    for r in 0..3u32 {
        n.round().unwrap();
        n.power_cycle((r as usize) % 6).unwrap();
    }
    n.settle(20_000);
    assert!(!n.delivered().is_empty());
    assert!(
        n.exactly_once(),
        "collector ledger {} vs ground truth {} ({} duplicates)",
        n.delivered().len(),
        n.expected().len(),
        n.duplicates()
    );
}

//! End-to-end integration: one token's full life cycle.
//!
//! Ingestion across all three collections → policy definition → gated
//! querying → audit verification → encrypted cloud archive → disaster
//! recovery onto a fresh token.

use pds::core::{
    AccessContext, Action, CloudStore, Collection, EncryptedArchive, Pds, Purpose, Rule,
};
use pds::db::{Predicate, Value};
use pds_obs::rng::SeedableRng;
use pds_obs::rng::StdRng;

fn populated() -> Pds {
    let mut pds = Pds::for_tests(1, "alice").unwrap();
    for day in 0..30u64 {
        pds.ingest_email(
            day,
            if day % 3 == 0 {
                "dr.martin"
            } else {
                "newsletter"
            },
            &format!("subject {day}"),
            &format!("body mentioning topic{} on day {day}", day % 5),
        )
        .unwrap();
        if day % 2 == 0 {
            pds.ingest_health(day, "blood-pressure", 110 + day, "routine check")
                .unwrap();
        }
        pds.ingest_bank(
            day,
            if day % 7 == 0 { "salary" } else { "groceries" },
            1000 + day,
            "cp",
        )
        .unwrap();
    }
    pds.set_clock(30);
    pds
}

#[test]
fn full_life_cycle_with_archive_recovery() {
    let mut pds = populated();
    let me = AccessContext::new("alice", Purpose::PersonalUse);

    // Query across both engines.
    let hits = pds.search(&me, &["topic2"], 10).unwrap();
    assert!(!hits.is_empty());
    let salary_rows = pds
        .select(
            &me,
            "BANK",
            &Predicate::eq("category", Value::str("salary")),
        )
        .unwrap();
    assert_eq!(salary_rows.len(), 5, "days 0,7,14,21,28");

    // Archive to an untrusted cloud, then recover onto a new token.
    let mut cloud = CloudStore::new();
    let mut rng = StdRng::seed_from_u64(1);
    let snapshot = pds.snapshot(&me).unwrap();
    let key = pds.owner_key().clone();
    let archive = EncryptedArchive::publish(&mut cloud, "alice", &key, &snapshot, &mut rng);

    // The original token is lost; restore from the cloud.
    let recovered_bytes = archive.restore(&cloud, &key).unwrap();
    assert_eq!(recovered_bytes, snapshot);
    let mut recovered = Pds::restore(99, "alice", &recovered_bytes).unwrap();
    let hits2 = recovered.search(&me, &["topic2"], 10).unwrap();
    assert_eq!(
        hits.iter().map(|h| h.doc).collect::<Vec<_>>(),
        hits2.iter().map(|h| h.doc).collect::<Vec<_>>(),
        "restored token answers identically"
    );
    let salary2 = recovered
        .select(
            &me,
            "BANK",
            &Predicate::eq("category", Value::str("salary")),
        )
        .unwrap();
    assert_eq!(salary_rows, salary2);
}

#[test]
fn cross_subject_policy_isolation() {
    let mut pds = populated();
    pds.grant(Rule::allow(
        "dr.martin",
        Collection::Table("HEALTH".into()),
        Action::Read,
        Some(Purpose::Care),
    ));
    pds.grant(Rule::allow(
        "accountant",
        Collection::Table("BANK".into()),
        Action::Read,
        Some(Purpose::PersonalUse),
    ));

    let doctor = AccessContext::new("dr.martin", Purpose::Care);
    let accountant = AccessContext::new("accountant", Purpose::PersonalUse);

    // Each subject reaches exactly their collection.
    assert!(pds
        .select(
            &doctor,
            "HEALTH",
            &Predicate::eq("category", Value::str("blood-pressure"))
        )
        .is_ok());
    assert!(pds
        .select(
            &doctor,
            "BANK",
            &Predicate::eq("category", Value::str("salary"))
        )
        .is_err());
    assert!(pds
        .select(
            &accountant,
            "BANK",
            &Predicate::eq("category", Value::str("salary"))
        )
        .is_ok());
    assert!(pds
        .select(
            &accountant,
            "HEALTH",
            &Predicate::eq("category", Value::str("blood-pressure"))
        )
        .is_err());

    // The trail recorded all four decisions and verifies.
    assert_eq!(pds.audit().entries().len(), 4);
    assert_eq!(pds.audit().denials(), 2);
    assert!(pds.audit().verify());
}

#[test]
fn aggregate_gateway_reveals_sums_not_rows() {
    let mut pds = populated();
    let stat = AccessContext::new("institute", Purpose::Statistics);
    let total = pds
        .aggregate_sum(&stat, "BANK", "amount_cents", None)
        .unwrap();
    let me = AccessContext::new("alice", Purpose::PersonalUse);
    let mut check = 0;
    for cat in ["salary", "groceries"] {
        for row in pds
            .select(&me, "BANK", &Predicate::eq("category", Value::str(cat)))
            .unwrap()
        {
            check += row[2].as_u64().unwrap();
        }
    }
    assert_eq!(total, check);
    // But the same subject cannot read the rows behind the sum.
    assert!(pds
        .select(
            &stat,
            "BANK",
            &Predicate::eq("category", Value::str("salary"))
        )
        .is_err());
}

#[test]
fn tampered_archive_never_restores() {
    let mut pds = populated();
    let me = AccessContext::new("alice", Purpose::PersonalUse);
    let mut cloud = CloudStore::new();
    let mut rng = StdRng::seed_from_u64(2);
    let snapshot = pds.snapshot(&me).unwrap();
    let key = pds.owner_key().clone();
    let archive = EncryptedArchive::publish(&mut cloud, "alice", &key, &snapshot, &mut rng);
    cloud.tamper("alice", 0, 20);
    assert!(archive.restore(&cloud, &key).is_err());
}

//! Integration: the Perspectives deployments — folder sync, trusted
//! cells and Folk-IS — composed with the crypto substrate.

use pds::core::CloudStore;
use pds::crypto::SymmetricKey;
use pds::sync::{Badge, CentralServer, FolkSim, FolkSimConfig, MedicalFolder, TrustedCell};
use pds_obs::rng::SeedableRng;
use pds_obs::rng::StdRng;

#[test]
fn month_of_care_coordination_converges() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut server = CentralServer::new();
    let mut folders: Vec<MedicalFolder> = (0..5)
        .map(|i| MedicalFolder::new(&format!("patient-{i}")))
        .collect();
    let keys: Vec<SymmetricKey> = folders.iter().map(|f| f.key().clone()).collect();
    let names: Vec<String> = folders.iter().map(|f| f.patient().to_string()).collect();

    for week in 0..4u64 {
        // Clinic writes for everyone; homes write locally.
        for (i, name) in names.iter().enumerate() {
            server.write(name, "dr.gp", week * 7, &format!("clinic w{week}"));
            folders[i].write("nurse", week * 7 + 3, &format!("home w{week}"));
        }
        // One badge tour a week, visiting a rotating subset of homes.
        let tour: Vec<usize> = (0..5)
            .filter(|i| (i + week as usize).is_multiple_of(2))
            .collect();
        let patients: Vec<(&str, &SymmetricKey)> = tour
            .iter()
            .map(|&i| (names[i].as_str(), &keys[i]))
            .collect();
        let mut badge = Badge::new();
        badge.load_central(&server, &patients, &mut rng);
        for &i in &tour {
            badge.sync_with_folder(&mut folders[i], &mut rng);
        }
        badge.unload_central(&mut server, &patients);
    }
    // A final full tour converges everyone.
    let patients: Vec<(&str, &SymmetricKey)> =
        names.iter().map(String::as_str).zip(keys.iter()).collect();
    let mut badge = Badge::new();
    badge.load_central(&server, &patients, &mut rng);
    for f in &mut folders {
        badge.sync_with_folder(f, &mut rng);
    }
    badge.unload_central(&mut server, &patients);

    for (f, name) in folders.iter().zip(&names) {
        assert_eq!(
            f.entries(),
            server.entries(name),
            "{name} replicas must converge after the final tour"
        );
        assert_eq!(f.len(), 8, "4 clinic + 4 home entries");
    }
}

#[test]
fn trusted_cells_fleet_converges_through_untrusted_cloud() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut cloud = CloudStore::new();
    let mut cells: Vec<TrustedCell> = ["home", "car", "phone"]
        .iter()
        .map(|n| TrustedCell::new(n, b"owner-zoe"))
        .collect();
    // Each cell produces its own slice.
    cells[0].write("heating", b"schedule-A");
    cells[1].write("trips", b"commute-log");
    cells[2].write("contacts", b"addressbook-v1");
    for c in &mut cells {
        c.sync(&mut cloud, &mut rng).unwrap();
    }
    // Every cell discovers every slice.
    for c in &mut cells {
        for slice in ["heating", "trips", "contacts"] {
            c.pull_new(&cloud, slice).unwrap();
        }
    }
    for c in &cells {
        assert_eq!(c.read("heating").unwrap(), b"schedule-A");
        assert_eq!(c.read("trips").unwrap(), b"commute-log");
        assert_eq!(c.read("contacts").unwrap(), b"addressbook-v1");
    }
    // Updates propagate with version ordering.
    cells[2].write("heating", b"schedule-B");
    cells[2].write("heating", b"schedule-C");
    cells[2].sync(&mut cloud, &mut rng).unwrap();
    let report = cells[0].sync(&mut cloud, &mut rng).unwrap();
    assert_eq!(report.pulled, 1);
    assert_eq!(cells[0].read("heating").unwrap(), b"schedule-C");
}

#[test]
fn folkis_carries_folder_deltas_between_disconnected_regions() {
    // Composition: a medical-folder delta travels a Folk-IS network as
    // an encrypted bundle from a remote village (participant 0) to the
    // district clinic (participant 59).
    let mut rng = StdRng::seed_from_u64(3);
    let mut folder = MedicalFolder::new("remote-patient");
    folder.write("health-worker", 1, "vaccination administered");
    let key = folder.key().clone();

    // Serialize + encrypt the folder's single entry as the bundle.
    let entry = &folder.entries()[0];
    let payload = format!(
        "{}|{}|{}|{}",
        entry.author, entry.seq, entry.day, entry.text
    );
    let ct = key.encrypt_prob(payload.as_bytes(), &mut rng);

    let mut sim = FolkSim::new(
        FolkSimConfig {
            participants: 60,
            grid: 10,
            copy_budget: 0,
        },
        &mut rng,
    );
    let id = sim.send(0, 59, ct.as_bytes());
    let stats = sim.run(3000, &mut rng);
    assert!(sim.is_delivered(id), "the form must reach the clinic");
    assert!(stats.mean_latency() > 0.0);
    // The clinic decrypts what no carrier could read.
    let plain = key.decrypt(&ct).unwrap();
    assert!(String::from_utf8(plain).unwrap().contains("vaccination"));
}

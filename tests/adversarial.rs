//! Failure injection: the system under attack and under resource
//! exhaustion.

use pds::core::{AccessContext, Pds, Purpose};
use pds::crypto::SymmetricKey;
use pds::db::{PBFilter, Predicate, Value};
use pds::flash::{Flash, FlashError, FlashGeometry};
use pds::global::detection::{analytic_detection, measure_detection, CheckOutcome, CheckedChannel};
use pds::global::secure_agg::{secure_aggregation, OnTamper};
use pds::global::{plaintext_groupby, GroupByQuery, Population, Ssi, SsiThreat};
use pds_obs::rng::SeedableRng;
use pds_obs::rng::StdRng;

#[test]
fn flash_exhaustion_is_a_clean_error_not_a_corruption() {
    // A 4-block chip fills up quickly; the log layer must surface
    // OutOfBlocks and leave prior data readable.
    let f = Flash::new(FlashGeometry::new(512, 4, 4));
    let mut log = f.new_log();
    let mut written = 0u32;
    let err = loop {
        match log.append(&[0xAB; 256]) {
            Ok(_) => written += 1,
            Err(e) => break e,
        }
    };
    assert_eq!(err, FlashError::OutOfBlocks);
    assert!(written > 0);
    // Everything written before the failure still reads back.
    for p in 0..log.num_pages() {
        let recs = log.read_page_records(p).unwrap();
        assert!(recs.iter().all(|r| r == &vec![0xAB; 256]));
    }
}

#[test]
fn ram_violation_aborts_the_query_not_the_token() {
    let mut pds = Pds::for_tests(1, "alice").unwrap();
    for i in 0..50 {
        pds.ingest_email(i, "s", "subj", &format!("word{i} common"))
            .unwrap();
    }
    let me = AccessContext::new("alice", Purpose::PersonalUse);
    // Burn almost all remaining RAM, then query.
    let hoard = pds
        .token()
        .ram()
        .reserve(pds.token().ram().available() - 256)
        .unwrap();
    let err = pds.search(&me, &["common"], 5).unwrap_err();
    assert!(matches!(err, pds::core::PdsError::Search(_)));
    drop(hoard);
    // The token recovers completely.
    assert!(!pds.search(&me, &["common"], 5).unwrap().is_empty());
}

#[test]
fn broken_token_does_not_poison_the_population_result() {
    // A physically compromised token leaks its own data (unavoidable)
    // but the protocol result over the others stays exact: the shared
    // key still authenticates, and the broken holder can only lie about
    // its own contribution.
    let mut rng = StdRng::seed_from_u64(1);
    let q = GroupByQuery::bank_by_category();
    let mut pop = Population::synthetic(30, &q.domain, &mut rng).unwrap();
    pop.tokens[3].token_mut().compromise();
    assert!(!pop.tokens[3].token().is_trusted());
    let truth = plaintext_groupby(&mut pop, &q).unwrap();
    let ssi = Ssi::honest(1);
    let (result, _) = secure_aggregation(&mut pop, &q, &ssi, 8, OnTamper::Abort, &mut rng).unwrap();
    assert_eq!(result, truth);
}

#[test]
fn covert_dropping_detection_tracks_the_analytic_curve() {
    let mut rng = StdRng::seed_from_u64(2);
    let key = SymmetricKey::from_seed(b"adv");
    for (drop_rate, sample_rate) in [(0.05f64, 0.05f64), (0.2, 0.02)] {
        let measured = measure_detection(400, drop_rate, sample_rate, 80, &key, &mut rng);
        let analytic = analytic_detection((400.0 * drop_rate) as u64, sample_rate);
        assert!(
            (measured - analytic).abs() < 0.25,
            "f={drop_rate} s={sample_rate}: measured {measured} vs analytic {analytic}"
        );
    }
}

#[test]
fn forged_and_replayed_tuples_never_pass_spot_checks() {
    let mut rng = StdRng::seed_from_u64(3);
    let key = SymmetricKey::from_seed(b"adv2");
    let mut ch = CheckedChannel::collect(&key, 300);
    ch.alter_fraction(0.5, &mut rng);
    let mut detected = 0;
    for _ in 0..20 {
        if ch.spot_check(&key, 0.1, &mut rng) == CheckOutcome::Detected {
            detected += 1;
        }
    }
    assert!(
        detected >= 19,
        "150 altered tuples at 10% sampling: ~certain"
    );
}

#[test]
fn malicious_ssi_with_skipping_tokens_shows_why_checking_matters() {
    let mut rng = StdRng::seed_from_u64(4);
    let q = GroupByQuery::bank_by_category();
    let mut pop = Population::synthetic(80, &q.domain, &mut rng).unwrap();
    let truth = plaintext_groupby(&mut pop, &q).unwrap();
    let truth_total: u64 = truth.iter().map(|(_, v)| v).sum();

    let ssi = Ssi::new(
        SsiThreat::WeaklyMalicious {
            drop_rate: 0.3,
            forge_rate: 0.0,
        },
        5,
    );
    let (biased, _) = secure_aggregation(&mut pop, &q, &ssi, 16, OnTamper::Skip, &mut rng).unwrap();
    let biased_total: u64 = biased.iter().map(|(_, v)| v).sum();
    assert!(biased_total < truth_total, "silent bias without checks");

    // With checking tokens, the same adversary forging anything at all
    // is caught immediately.
    let ssi2 = Ssi::new(
        SsiThreat::WeaklyMalicious {
            drop_rate: 0.0,
            forge_rate: 0.05,
        },
        6,
    );
    assert!(secure_aggregation(&mut pop, &q, &ssi2, 16, OnTamper::Abort, &mut rng).is_err());
}

#[test]
fn pbfilter_survives_interleaved_writers_on_a_shared_chip() {
    // Two indexes and a table share one chip: block-grain allocation must
    // keep their logs disjoint under heavy interleaving.
    let f = Flash::small(256);
    let mut idx_a = PBFilter::new(&f);
    let mut idx_b = PBFilter::new(&f);
    for i in 0..3000u32 {
        idx_a.insert(format!("A{}", i % 31).as_bytes(), i).unwrap();
        idx_b.insert(format!("B{}", i % 17).as_bytes(), i).unwrap();
    }
    idx_a.flush().unwrap();
    idx_b.flush().unwrap();
    assert_eq!(idx_a.lookup(b"A5").unwrap().len(), 3000 / 31 + 1);
    assert_eq!(
        idx_b.lookup(b"B5").unwrap().len(),
        3000 / 17 + iverson(3000 % 17 > 5)
    );
    assert!(
        idx_a.lookup(b"B5").unwrap().is_empty(),
        "no cross-index bleed"
    );
}

fn iverson(b: bool) -> usize {
    usize::from(b)
}

#[test]
fn per_row_retention_cannot_be_bypassed_by_predicate_choice() {
    let mut pds = Pds::for_tests(2, "bob").unwrap();
    for day in 0..100u64 {
        pds.ingest_bank(day, "groceries", 100 + day, "shop")
            .unwrap();
    }
    pds.set_clock(100);
    pds.grant(pds::core::policy::Rule {
        subject: pds::core::policy::SubjectPattern::Exact("auditor".into()),
        collection: pds::core::Collection::Table("BANK".into()),
        action: pds::core::Action::Read,
        purpose: None,
        policy: pds::core::Policy::Allow,
        max_age_days: Some(30),
    });
    let auditor = AccessContext::new("auditor", Purpose::Care);
    let rows = pds
        .select(
            &auditor,
            "BANK",
            &Predicate::eq("category", Value::str("groceries")),
        )
        .unwrap();
    assert_eq!(rows.len(), 30, "only days 70..=99 are within 30 days");
    assert!(rows.iter().all(|r| r[0].as_u64().unwrap() >= 70));
}

//! Integration tests for the `pds-obs` instrumentation threaded through
//! the stack: a traced gateway request must yield a `QueryTrace` whose
//! flash/RAM/policy numbers reflect what actually happened, a summary
//! scan must cost measurably fewer page reads than the full table scan
//! it replaces (the paper's 17-vs-640 ordering), and the registry's
//! JSONL export must round-trip through the in-tree JSON parser.

use pds::core::{AccessContext, Pds, Purpose};
use pds::db::{Predicate, Value};
use pds_obs::budgets;

fn populated(id: u64, rows: u64) -> Pds {
    let mut pds = Pds::for_tests(id, "alice").unwrap();
    for day in 0..rows {
        pds.ingest_bank(
            day,
            if day % 7 == 0 { "salary" } else { "groceries" },
            1000 + day,
            "cp",
        )
        .unwrap();
    }
    pds.set_clock(rows);
    pds
}

#[test]
fn traced_select_reports_io_ram_and_policy() {
    let mut pds = populated(1, 400);
    let me = AccessContext::new("alice", Purpose::PersonalUse);
    let pred = Predicate::eq("category", Value::str("salary"));
    let (res, trace) = pds.select_traced(&me, "BANK", &pred);
    let rows = res.unwrap();
    assert!(!rows.is_empty());

    // The explain report carries the costs the tutorial argues about.
    assert_eq!(trace.policy_decision(), Some("granted"));
    assert!(trace.page_reads() > 0, "a scan must read pages");
    assert_eq!(trace.block_erases(), 0, "a select never erases");
    assert!(trace.peak_ram_bytes() > 0, "scan buffers live in MCU RAM");
    let page_size = pds.token().flash().geometry().page_size as u64;
    assert!(trace.peak_ram_pages(page_size) >= 1);

    // RAM stays inside the paper's 128 KB secure-MCU envelope.
    let checks = trace.check_budgets(&[("mcu.ram.peak_bytes", budgets::RAM_BYTES)]);
    assert!(checks.iter().all(|c| c.within), "{checks:?}");

    // The rendered report names the layers it traversed.
    let report = trace.render();
    assert!(report.contains("pds.request"), "{report}");
    assert!(report.contains("db.select"), "{report}");
    assert!(report.contains("page_reads"), "{report}");
}

#[test]
fn summary_scan_reads_fewer_pages_than_full_scan() {
    // Large enough that the PBFilter's own pages are cheap next to the
    // table: ~230 data pages, ~31 of them holding a "salary" row.
    let mut pds = Pds::for_tests(2, "alice").unwrap();
    for day in 0..3000u64 {
        pds.ingest_bank(
            day,
            if day % 97 == 0 { "salary" } else { "groceries" },
            1000 + day,
            "cp",
        )
        .unwrap();
    }
    pds.set_clock(3000);
    let me = AccessContext::new("alice", Purpose::PersonalUse);
    let pred = Predicate::eq("category", Value::str("salary"));

    let (res, full) = pds.select_traced(&me, "BANK", &pred);
    let rows_full = res.unwrap();
    assert_eq!(
        full.root
            .find("db.select")
            .and_then(|s| s.attr("db.plan"))
            .and_then(|a| a.as_str()),
        Some("full_scan")
    );

    pds.create_index(&me, "BANK", "category").unwrap();

    let (res, summary) = pds.select_traced(&me, "BANK", &pred);
    let rows_summary = res.unwrap();
    assert_eq!(
        summary
            .root
            .find("db.select")
            .and_then(|s| s.attr("db.plan"))
            .and_then(|a| a.as_str()),
        Some("summary_scan")
    );

    assert_eq!(rows_full, rows_summary, "plans must agree on the answer");
    assert!(
        summary.page_reads() < full.page_reads(),
        "summary scan ({}) must beat the full scan ({}) — the slide's 17 vs 640",
        summary.page_reads(),
        full.page_reads()
    );
}

#[test]
fn denied_request_is_traced_without_touching_data() {
    let mut pds = populated(3, 50);
    let stranger = AccessContext::new("mallory", Purpose::PersonalUse);
    let pred = Predicate::eq("category", Value::str("salary"));
    let (res, trace) = pds.select_traced(&stranger, "BANK", &pred);
    assert!(res.is_err());
    assert_eq!(trace.policy_decision(), Some("denied"));
    assert_eq!(trace.page_reads(), 0, "denial happens before any flash IO");
}

#[test]
fn non_owner_cannot_create_indexes() {
    let mut pds = populated(4, 50);
    let stranger = AccessContext::new("mallory", Purpose::PersonalUse);
    assert!(pds.create_index(&stranger, "BANK", "category").is_err());
}

#[test]
fn registry_export_round_trips_through_the_json_parser() {
    let mut pds = populated(5, 100);
    let me = AccessContext::new("alice", Purpose::PersonalUse);
    pds.search(&me, &["salary"], 5).ok();
    pds.select(
        &me,
        "BANK",
        &Predicate::eq("category", Value::str("salary")),
    )
    .unwrap();
    pds_obs::event("obs.selftest", &[("answer", 42)]);

    let jsonl = pds_obs::metrics::global().export_jsonl();
    assert!(!jsonl.is_empty());
    let mut saw_counter = false;
    let mut saw_selftest_event = false;
    for line in jsonl.lines() {
        let doc =
            pds_obs::json::parse(line).unwrap_or_else(|| panic!("unparseable export line: {line}"));
        let ty = doc
            .get("type")
            .and_then(|v| v.as_str())
            .expect("typed line");
        assert!(doc.get("name").is_some(), "every line is named: {line}");
        match ty {
            "counter" | "gauge" => {
                saw_counter |= ty == "counter";
                assert!(doc.get("value").and_then(|v| v.as_u64()).is_some());
            }
            "histogram" => {
                assert!(doc.get("count").and_then(|v| v.as_u64()).is_some());
                assert!(doc.get("buckets").and_then(|v| v.as_arr()).is_some());
            }
            "event" => {
                if doc.get("name").and_then(|v| v.as_str()) == Some("obs.selftest") {
                    saw_selftest_event = true;
                    assert_eq!(doc.get("answer").and_then(|v| v.as_u64()), Some(42));
                }
            }
            other => panic!("unknown line type {other}: {line}"),
        }
    }
    assert!(saw_counter, "flash counters must appear in the export");
    assert!(saw_selftest_event, "events must appear in the export");
}

#[test]
fn saturated_event_ring_counts_drops_instead_of_silently_truncating() {
    // Regression: when the bounded event ring overflows, the registry
    // must say so — `obs.events_dropped` climbs and the export carries
    // the counter — rather than quietly exporting a truncated stream.
    let reg = pds_obs::metrics::Registry::new();
    reg.set_event_capacity(8);
    for i in 0..20u64 {
        reg.event("obs.flood", &[("i", i)]);
    }
    assert_eq!(reg.events_dropped(), 12, "20 events into an 8-slot ring");

    let jsonl = reg.export_jsonl();
    let events = jsonl
        .lines()
        .filter(|l| l.contains("\"event\"") && l.contains("obs.flood"))
        .count();
    assert_eq!(events, 8, "the ring keeps the newest events");
    let dropped_line = jsonl
        .lines()
        .find(|l| l.contains("obs.events_dropped"))
        .expect("the drop counter must appear in the export");
    let doc = pds_obs::json::parse(dropped_line).unwrap();
    assert_eq!(doc.get("value").and_then(|v| v.as_u64()), Some(12));

    // The surviving window is the *tail* of the stream, in order.
    let newest: Vec<u64> = jsonl
        .lines()
        .filter(|l| l.contains("obs.flood"))
        .map(|l| {
            pds_obs::json::parse(l)
                .and_then(|d| d.get("i").and_then(|v| v.as_u64()))
                .unwrap()
        })
        .collect();
    assert_eq!(newest, (12..20).collect::<Vec<_>>());
}

#[test]
fn query_trace_serializes_as_json() {
    let mut pds = populated(6, 50);
    let me = AccessContext::new("alice", Purpose::PersonalUse);
    let (res, trace) = pds.search_traced(&me, &["salary"], 5);
    res.unwrap();
    let doc = pds_obs::json::parse(&trace.to_json()).expect("trace JSON parses");
    assert_eq!(doc.get("span").and_then(|v| v.as_str()), Some("pds.traced"));
    assert!(doc.get("children").and_then(|v| v.as_arr()).is_some());
}

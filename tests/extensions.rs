//! Integration: the extension data models composed with the rest of the
//! stack — a life-logging token whose series, key-value state and
//! relational records share one chip and one RAM budget, archived and
//! restored through the untrusted cloud.

use pds::core::CloudStore;
use pds::crypto::SymmetricKey;
use pds::db::value::{ColumnType, Schema};
use pds::db::{Database, KvStore, Predicate, TimeSeries, Value};
use pds::flash::{Flash, FlashGeometry};
use pds::mcu::codesign::{max_search_keywords, search_residents};
use pds::mcu::{HardwareProfile, RamBudget};
use pds_obs::rng::SeedableRng;
use pds_obs::rng::StdRng;

#[test]
fn three_data_models_share_one_chip() {
    let flash = Flash::new(FlashGeometry::new(2048, 64, 4096));
    let ram = RamBudget::new(64 * 1024);

    // Relational.
    let mut db = Database::new(&flash, &ram);
    db.create_table(
        "VISITS",
        Schema::new(&[("day", ColumnType::U64), ("doctor", ColumnType::Str)]),
    )
    .unwrap();
    for d in 0..200u64 {
        db.insert(
            "VISITS",
            vec![Value::U64(d), Value::Str(format!("dr-{}", d % 5))],
        )
        .unwrap();
    }
    db.create_index("VISITS", "doctor").unwrap();

    // Time series.
    let mut weight = TimeSeries::new(&flash);
    for d in 0..365u64 {
        weight.append(d * 86_400, 70_000 + (d % 30) as i64).unwrap();
    }
    weight.flush().unwrap();

    // Key-value.
    let mut prefs = KvStore::new(&flash);
    for i in 0..500u32 {
        prefs
            .put(format!("k{}", i % 50).as_bytes(), &i.to_le_bytes())
            .unwrap();
    }
    prefs.flush().unwrap();

    // All three answer correctly off the shared chip.
    let visits = db
        .select("VISITS", &Predicate::eq("doctor", Value::str("dr-3")))
        .unwrap();
    assert_eq!(visits.len(), 40);
    let agg = weight.range_aggregate(0, 29 * 86_400).unwrap();
    assert_eq!(agg.count, 30);
    assert!(prefs.get(b"k10").unwrap().is_some());
    // And nothing ever erased a block (pure log discipline).
    assert_eq!(flash.stats().block_erases, 0);
}

#[test]
fn kv_state_survives_the_encrypted_archive() {
    // A token's KV state is exported, archived encrypted, and restored
    // onto a fresh token — the Trusted Cells durability story applied to
    // the extension store.
    let flash = Flash::new(FlashGeometry::new(2048, 64, 1024));
    let mut kv = KvStore::new(&flash);
    for i in 0..200u32 {
        kv.put(format!("key{i}").as_bytes(), format!("val{i}").as_bytes())
            .unwrap();
    }
    kv.flush().unwrap();
    // Export live pairs (compaction gives exactly the live set).
    let kv = kv.compact().unwrap();
    let mut payload = Vec::new();
    for i in 0..200u32 {
        let v = kv.get(format!("key{i}").as_bytes()).unwrap().unwrap();
        payload.extend_from_slice(&(v.len() as u32).to_le_bytes());
        payload.extend_from_slice(&v);
    }
    let key = SymmetricKey::from_seed(b"kv-archive");
    let mut cloud = CloudStore::new();
    let mut rng = StdRng::seed_from_u64(5);
    let archive = pds::core::EncryptedArchive::publish(&mut cloud, "kv", &key, &payload, &mut rng);
    let restored = archive.restore(&cloud, &key).unwrap();
    assert_eq!(restored, payload);
}

#[test]
fn codesign_predictions_hold_for_the_real_search_engine() {
    use pds::search::{DfStrategy, SearchEngine};
    let p = HardwareProfile::small_token();
    let flash = Flash::new(p.flash);
    let ram = RamBudget::new(p.ram_bytes);
    let mut engine = SearchEngine::new(&flash, &ram, 64, 256, DfStrategy::TwoPass).unwrap();
    for i in 0..100 {
        engine
            .index_document(&format!("w{} w{} w{} shared", i % 7, i % 11, i % 13))
            .unwrap();
    }
    let residents = search_residents(64, 256);
    let k_max = max_search_keywords(&p, residents, 10).unwrap();
    // A query at the calibrated maximum succeeds…
    let kws: Vec<String> = (0..k_max).map(|i| format!("w{}", i % 13)).collect();
    let kw_refs: Vec<&str> = kws.iter().map(String::as_str).collect();
    assert!(engine.search(&kw_refs, 10).is_ok(), "k={k_max} must fit");
    // …and well beyond it fails with a RAM error, not a crash.
    let too_many: Vec<String> = (0..k_max + 4).map(|i| format!("x{i}")).collect();
    // Distinct unknown terms have df 0 and are dropped before cursor
    // allocation, so force known terms instead.
    let mut engine2 = SearchEngine::new(&flash, &ram, 64, 256, DfStrategy::TwoPass);
    if let Ok(ref mut e2) = engine2 {
        let doc: String = (0..k_max + 4).map(|i| format!("y{i} ")).collect();
        e2.index_document(&doc).unwrap();
        let kws2: Vec<String> = (0..k_max + 4).map(|i| format!("y{i}")).collect();
        let kw2: Vec<&str> = kws2.iter().map(String::as_str).collect();
        assert!(
            e2.search(&kw2, 10).is_err(),
            "k={} must exceed the device",
            k_max + 4
        );
    }
    let _ = too_many;
}
